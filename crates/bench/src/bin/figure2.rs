//! Figure 2 — MPDATA: speedup of the fine-grain and OpenMP schedulers (left panel) and
//! speedup of the fine-grain scheduler over OpenMP (right panel).
//!
//! Native mode sweeps thread counts up to the hardware parallelism and measures the
//! MPDATA solver (paper mesh: 5 568 nodes / 16 397 edges) under the fine-grain scheduler
//! and the OpenMP-like team.  `--simulate` (also printed by default) evaluates the
//! cost model on the 48-core paper machine.
//!
//! Flags: `--steps N` (time steps per measurement, default 20), `--max-threads N`,
//! `--quick`, `--csv`, `--simulate` (simulation only), `--trace <path>` (Chrome
//! trace-event timeline), `--topology detect|paper|SxC`,
//! `--pin compact|scatter|none`, `--flat-sync` (worker placement).

use parlo_analysis::{series_to_csv, series_to_text, Series};
use parlo_bench::{
    arg_value, has_flag, native_thread_sweep, placement_args, time_secs, trace_finish, trace_setup,
};
use parlo_core::{FineGrainPool, Sequential};
use parlo_exec::Executor;
use parlo_omp::ScheduledTeam;
use parlo_sim::SimMachine;
use parlo_workloads::{Mpdata, PlacementConfig};

fn measure_native(
    steps: usize,
    max_threads: Option<usize>,
    placement: &PlacementConfig,
) -> (Series, Series, Series) {
    let mut fine = Series::empty("fine-grain");
    let mut omp = Series::empty("OpenMP");

    // Sequential baseline.
    let mut seq_runner = Sequential;
    let mut solver = Mpdata::paper_problem();
    let t_seq = time_secs(|| {
        solver.run(&mut seq_runner, steps, false);
    });
    eprintln!("figure2: sequential baseline {t_seq:.3}s for {steps} steps");

    // One substrate for the whole sweep: both runtimes at every thread count lease
    // the same workers (the substrate grows to the largest count measured).
    let executor = Executor::for_placement(placement);
    for threads in native_thread_sweep(max_threads) {
        let mut fine_runner = FineGrainPool::with_placement_on(threads, placement, &executor);
        let mut solver = Mpdata::paper_problem();
        let t = time_secs(|| {
            solver.run(&mut fine_runner, steps, false);
        });
        fine.push(threads, t_seq / t);

        let mut omp_runner = ScheduledTeam::with_placement_on(
            threads,
            parlo_omp::Schedule::Static,
            placement,
            &executor,
        );
        let mut solver = Mpdata::paper_problem();
        let t = time_secs(|| {
            solver.run(&mut omp_runner, steps, false);
        });
        omp.push(threads, t_seq / t);
        eprintln!(
            "  threads {threads}: fine {:.3}, OpenMP {:.3}",
            fine.at(threads).unwrap(),
            omp.at(threads).unwrap()
        );
    }
    let stats = executor.stats();
    eprintln!(
        "figure2: substrate held {} worker threads across the sweep ({} lease switches)",
        stats.workers, stats.switches
    );
    let ratio = fine.ratio_over(&omp, "fine-grain / OpenMP");
    (fine, omp, ratio)
}

fn print_series(title: &str, series: &[&Series], csv: bool) {
    if csv {
        println!("{}", series_to_csv(series));
    } else {
        println!("{}", series_to_text(title, series));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // --wait exports PARLO_WAIT before any pool is constructed (see wait_arg).
    parlo_bench::wait_arg(&args);
    let trace = trace_setup(&args);
    let csv = has_flag(&args, "--csv");
    let steps =
        arg_value(&args, "--steps").unwrap_or(if has_flag(&args, "--quick") { 5 } else { 20 });

    if !has_flag(&args, "--simulate") {
        let placement = placement_args(&args);
        let (fine, omp, ratio) =
            measure_native(steps, arg_value(&args, "--max-threads"), &placement);
        print_series(
            "Figure 2 left (native): MPDATA speedup over sequential",
            &[&fine, &omp],
            csv,
        );
        print_series(
            "Figure 2 right (native): speedup of fine-grain over OpenMP",
            &[&ratio],
            csv,
        );
    }

    // Simulated 48-core machine.
    let machine = SimMachine::paper_machine();
    let (fine_s, omp_s) = parlo_sim::experiments::figure2_left(&machine);
    let ratio_s = parlo_sim::experiments::figure2_right(&machine);
    print_series(
        "Figure 2 left (simulated 48-core machine): MPDATA speedup",
        &[&fine_s, &omp_s],
        csv,
    );
    print_series(
        "Figure 2 right (simulated): speedup of fine-grain over OpenMP",
        &[&ratio_s],
        csv,
    );
    trace_finish(trace);
    println!(
        "paper reference: OpenMP speedup stagnates with increasing threads; the fine-grain \
         scheduler improves MPDATA by up to 22% over OpenMP at 48 threads."
    );
}
