//! CI perf-regression gate: simulated burdens and measured criterion medians.
//!
//! **Simulated mode** (default) compares the fitted (or simulated) scheduler burdens
//! of a fresh `table1 --json` report against the checked-in baseline and fails when
//! any runtime's burden `d` regressed by more than the threshold — the CI hook that
//! makes `BENCH_*.json` trajectories actionable.
//!
//! **Measured mode** (`--measured`) gates real-hardware numbers: it ingests one
//! `CRITERION_JSON` file per repeated bench run (`--current`, repeatable), aggregates
//! them min-of-k, and compares against a measured baseline with noise-tolerant
//! thresholds — a bench fails only if it regresses beyond
//! `max(threshold_pct · baseline, mad_k · MAD)` of the baseline's recorded
//! dispersion.  Baselines record a host fingerprint (cpu count, `PARLO_THREADS`);
//! gating or updating across fingerprints is refused with its own exit code, the same
//! guard class as the simulated gate's cross-workload refusal.
//!
//! ```text
//! perfgate --current <report.json> [--baseline bench/baseline.json]
//!          [--threshold-pct 25] [--update] [--soft]
//! perfgate --measured --current <run1.json> [--current <run2.json> ...]
//!          [--baseline bench/criterion_baseline.json] [--threshold-pct 10]
//!          [--mad-k 6] [--out <aggregate.json>] [--update] [--soft]
//! ```
//!
//! * `--current <path>` — the report to check (required; repeatable in measured mode:
//!   one `CRITERION_JSON` file per repeated run);
//! * `--baseline <path>` — the reference report (default `bench/baseline.json`, or
//!   `bench/criterion_baseline.json` in measured mode);
//! * `--threshold-pct N` — relative regression tolerated per row (default 25
//!   simulated, 10 measured);
//! * `--mad-k K` — measured mode: dispersion multiplier of the noise allowance
//!   (`K · MAD`, default 6);
//! * `--out <path>` — measured mode: also write the min-of-k aggregate (the
//!   `MEASURED_<sha>.json` CI artifact);
//! * `--update` — overwrite the baseline with the current report/aggregate instead of
//!   gating (run after an intentional change and commit the result; refused across
//!   workloads and, in measured mode, across host fingerprints);
//! * `--soft` — warn-only: report regressions and fingerprint mismatches but exit 0
//!   (for the first landing of a measured gate in CI).
//!
//! Exit status:
//!
//! * `0` — gate passed, baseline updated, or `--soft` downgraded a failure;
//! * `1` — regression, or a baseline row missing from the current report;
//! * `2` — usage/IO error, including the cross-workload refusal;
//! * `3` — host-fingerprint mismatch (measured mode): the reports are not comparable
//!   on this machine shape; re-baseline with `--update` on the target machine.

use parlo_bench::measured::{
    aggregate, check_fingerprint, compare_measured, read_criterion_run, read_measured_report,
    write_measured_report, MeasuredReport,
};
use parlo_bench::{arg_str, arg_strs, compare_burdens, has_flag, read_json_report};

const DEFAULT_BASELINE: &str = "bench/baseline.json";
const DEFAULT_MEASURED_BASELINE: &str = "bench/criterion_baseline.json";
const DEFAULT_THRESHOLD_PCT: f64 = 25.0;
const DEFAULT_MEASURED_THRESHOLD_PCT: f64 = 10.0;
const DEFAULT_MAD_K: f64 = 6.0;
/// Exit code for the measured mode's cross-fingerprint refusal.
const EXIT_FINGERPRINT: i32 = 3;

fn usage_error(msg: &str) -> ! {
    eprintln!("perfgate: {msg}");
    eprintln!(
        "usage: perfgate --current <report.json> [--baseline <baseline.json>] \
         [--threshold-pct N] [--update] [--soft]"
    );
    eprintln!(
        "       perfgate --measured --current <run.json>... [--baseline <baseline.json>] \
         [--threshold-pct N] [--mad-k K] [--out <aggregate.json>] [--update] [--soft]"
    );
    eprintln!(
        "exit codes: 0 = pass/updated/soft, 1 = regression or missing row, \
         2 = usage/IO error (incl. workload mismatch), 3 = host-fingerprint mismatch"
    );
    std::process::exit(2);
}

fn threshold_arg(args: &[String], default: f64) -> f64 {
    match arg_str(args, "--threshold-pct") {
        None => default,
        Some(v) => match v.parse::<f64>() {
            Ok(t) if t.is_finite() && t >= 0.0 => t,
            _ => usage_error("--threshold-pct must be a non-negative number"),
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if has_flag(&args, "--measured") {
        measured_main(&args);
    } else {
        simulated_main(&args);
    }
}

// -------------------------------------------------------------------------------------
// Measured mode
// -------------------------------------------------------------------------------------

/// Reads and aggregates every `--current` run file into one measured report.
fn read_current_aggregate(args: &[String]) -> MeasuredReport {
    let current_paths = arg_strs(args, "--current");
    if current_paths.is_empty() {
        usage_error("--measured requires at least one --current <CRITERION_JSON file>");
    }
    let runs: Vec<_> = current_paths
        .iter()
        .map(|path| match read_criterion_run(path) {
            Ok(run) => run,
            Err(e) => usage_error(&format!("cannot read criterion run `{path}`: {e}")),
        })
        .collect();
    match aggregate(&runs) {
        Ok(report) => report,
        Err(e) => usage_error(&e),
    }
}

fn measured_main(args: &[String]) {
    let baseline_path = arg_str(args, "--baseline").unwrap_or(DEFAULT_MEASURED_BASELINE);
    let threshold_pct = threshold_arg(args, DEFAULT_MEASURED_THRESHOLD_PCT);
    let mad_k = match arg_str(args, "--mad-k") {
        None => DEFAULT_MAD_K,
        Some(v) => match v.parse::<f64>() {
            Ok(k) if k.is_finite() && k >= 0.0 => k,
            _ => usage_error("--mad-k must be a non-negative number"),
        },
    };
    let soft = has_flag(args, "--soft");

    let current = read_current_aggregate(args);
    println!(
        "perfgate: measured aggregate of {} run(s), {} bench(es), host {}",
        current.runs,
        current.rows.len(),
        current.host.describe()
    );

    if let Some(out_path) = arg_str(args, "--out") {
        if let Err(e) = write_measured_report(out_path, &current) {
            usage_error(&format!("cannot write aggregate `{out_path}`: {e}"));
        }
        println!("perfgate: wrote min-of-k aggregate to `{out_path}`");
    }

    if has_flag(args, "--update") {
        // The measured twin of the simulated workload guard: overwriting a baseline
        // taken on a different machine shape would poison every later gate run on
        // the original machine, silently.  An intentional machine switch requires
        // deleting the old baseline first, which makes the switch explicit in the
        // diff.
        if let Ok(existing) = read_measured_report(baseline_path) {
            if let Err(e) = check_fingerprint(&current, &existing) {
                eprintln!(
                    "perfgate: refusing to overwrite `{baseline_path}`: {e}; delete the \
                     baseline first if the machine switch is intentional"
                );
                std::process::exit(EXIT_FINGERPRINT);
            }
        }
        if let Err(e) = write_measured_report(baseline_path, &current) {
            usage_error(&format!("cannot update baseline `{baseline_path}`: {e}"));
        }
        println!("perfgate: measured baseline `{baseline_path}` updated");
        return;
    }

    let baseline = match read_measured_report(baseline_path) {
        Ok(r) => r,
        Err(e) => usage_error(&format!(
            "cannot read measured baseline `{baseline_path}`: {e} (generate one with \
             `perfgate --measured --current <runs...> --update`)"
        )),
    };

    if let Err(e) = check_fingerprint(&current, &baseline) {
        if soft {
            println!("perfgate: SOFT-SKIP (fingerprint) — {e}");
            return;
        }
        eprintln!("perfgate: {e}");
        std::process::exit(EXIT_FINGERPRINT);
    }

    let outcome = compare_measured(&current, &baseline, threshold_pct, mad_k);
    println!(
        "perfgate: measured gate vs `{baseline_path}` (threshold {threshold_pct}%, mad-k {mad_k})"
    );
    println!(
        "{:<44} {:>12} {:>12} {:>12} {:>9}",
        "bench", "baseline us", "current us", "allowed +us", "delta"
    );
    for row in &outcome.rows {
        let verdict = if row.regressed() { "  REGRESSED" } else { "" };
        println!(
            "{:<44} {:>12.3} {:>12.3} {:>12.3} {:>8.1}%{verdict}",
            row.name,
            row.baseline_s * 1e6,
            row.current_s * 1e6,
            row.allowed_s * 1e6,
            row.delta_pct()
        );
    }
    for missing in &outcome.missing {
        println!("{missing:<44} missing from the current runs  REGRESSED");
    }
    for added in &outcome.added {
        println!(
            "{added:<44} new bench (not in baseline; consider `perfgate --measured --update`)"
        );
    }

    if outcome.passed() {
        println!("perfgate: OK — no bench regressed beyond max({threshold_pct}%, {mad_k}*MAD)");
    } else {
        println!(
            "perfgate: {} — {} regression(s), {} missing bench(es):",
            if soft { "SOFT-FAIL" } else { "FAILED" },
            outcome.regressions().len(),
            outcome.missing.len()
        );
        for line in outcome.failure_lines() {
            println!("  {line}");
        }
        if !soft {
            std::process::exit(1);
        }
    }
}

// -------------------------------------------------------------------------------------
// Simulated mode (the original gate)
// -------------------------------------------------------------------------------------

fn simulated_main(args: &[String]) {
    let Some(current_path) = arg_str(args, "--current") else {
        usage_error("--current <report.json> is required");
    };
    let baseline_path = arg_str(args, "--baseline").unwrap_or(DEFAULT_BASELINE);
    let threshold_pct = threshold_arg(args, DEFAULT_THRESHOLD_PCT);
    let soft = has_flag(args, "--soft");

    let current = match read_json_report(current_path) {
        Ok(r) => r,
        Err(e) => usage_error(&format!("cannot read current report `{current_path}`: {e}")),
    };

    if has_flag(args, "--update") {
        // The same workload guard as gating: silently replacing the micro-workload
        // baseline with, say, a `--workload skewed` report would poison every later
        // gate run.  An intentional workload switch requires removing the old
        // baseline first, which makes the switch explicit in the diff.
        if let Ok(existing) = read_json_report(baseline_path) {
            if existing.workload != current.workload {
                usage_error(&format!(
                    "workload mismatch: baseline `{baseline_path}` measured `{}` but current \
                     `{current_path}` measured `{}`; delete the baseline first if the switch \
                     is intentional",
                    existing.workload, current.workload
                ));
            }
        }
        if let Err(e) = std::fs::copy(current_path, baseline_path) {
            usage_error(&format!("cannot update baseline `{baseline_path}`: {e}"));
        }
        println!("perfgate: baseline `{baseline_path}` updated from `{current_path}`");
        return;
    }

    let baseline = match read_json_report(baseline_path) {
        Ok(r) => r,
        Err(e) => usage_error(&format!(
            "cannot read baseline `{baseline_path}`: {e} (generate one with \
             `table1 --simulate --json {baseline_path}` or `perfgate --update`)"
        )),
    };

    // Burdens are only comparable when both reports measured the same loop body: an
    // irregular workload inflates a static schedule's *effective* burden by design,
    // so gating a `--workload skewed` report against the micro baseline (or updating
    // the baseline from one) would be a category error, not a regression.
    if baseline.workload != current.workload {
        usage_error(&format!(
            "workload mismatch: baseline `{baseline_path}` measured `{}` but current \
             `{current_path}` measured `{}`; regenerate the baseline for that workload \
             or gate a matching report",
            baseline.workload, current.workload
        ));
    }

    let outcome = compare_burdens(&baseline, &current, threshold_pct);
    println!(
        "perfgate: {} vs {} (threshold {threshold_pct}%, workload {})",
        current_path, baseline_path, current.workload
    );
    println!(
        "{:<40} {:>12} {:>12} {:>9}",
        "scheduler", "baseline us", "current us", "delta"
    );
    for row in &outcome.rows {
        let delta = row.delta_pct();
        let verdict = if delta > threshold_pct {
            "  REGRESSED"
        } else {
            ""
        };
        println!(
            "{:<40} {:>12.3} {:>12.3} {:>8.1}%{verdict}",
            row.scheduler, row.baseline_us, row.current_us, delta
        );
    }
    for row in &outcome.serve_rows {
        let verdict = if row.worst_delta_pct() > threshold_pct {
            "  REGRESSED"
        } else {
            ""
        };
        println!(
            "serve:{:<34} {:>10.0} -> {:>8.0} loops/s ({:+.1}%), p99 {:.1} -> {:.1} us ({:+.1}%){verdict}",
            row.scenario,
            row.baseline_lps,
            row.current_lps,
            row.throughput_drop_pct(),
            row.baseline_p99_us,
            row.current_p99_us,
            row.p99_rise_pct()
        );
    }
    for missing in &outcome.missing {
        println!("{missing:<40} missing from the current report  REGRESSED");
    }
    for added in &outcome.added {
        println!("{added:<40} new scheduler (not in baseline; consider `perfgate --update`)");
    }

    if outcome.passed() {
        println!(
            "perfgate: OK — no burden or serve scenario regressed by more than {threshold_pct}%"
        );
    } else {
        println!(
            "perfgate: {} — {} regression(s), {} missing row(s):",
            if soft { "SOFT-FAIL" } else { "FAILED" },
            outcome.regressions().len() + outcome.serve_regressions().len(),
            outcome.missing.len()
        );
        // Row-by-row failure listing: every regressed row and every missing row by
        // name, so a multi-row failure is diagnosable from the log's last lines.
        for line in outcome.failure_lines() {
            println!("  {line}");
        }
        if !soft {
            std::process::exit(1);
        }
    }
}
