//! CI perf-regression gate over the burden model.
//!
//! Compares the fitted (or simulated) scheduler burdens of a fresh `table1 --json`
//! report against the checked-in baseline and fails when any runtime's burden `d`
//! regressed by more than the threshold — the CI hook that finally makes
//! `BENCH_*.json` trajectories actionable.
//!
//! ```text
//! perfgate --current bench_table1.json [--baseline bench/baseline.json]
//!          [--threshold-pct 25] [--update]
//! ```
//!
//! * `--current <path>` — the report to check (required);
//! * `--baseline <path>` — the reference report (default `bench/baseline.json`);
//! * `--threshold-pct N` — relative regression tolerated per scheduler (default 25);
//! * `--update` — overwrite the baseline with the current report instead of gating
//!   (run after an intentional model/scheduler change and commit the result).
//!
//! Exit status: 0 = gate passed (or baseline updated), 1 = regression or missing
//! scheduler, 2 = usage/IO error.

use parlo_bench::{arg_str, compare_burdens, has_flag, read_json_report};

const DEFAULT_BASELINE: &str = "bench/baseline.json";
const DEFAULT_THRESHOLD_PCT: f64 = 25.0;

fn usage_error(msg: &str) -> ! {
    eprintln!("perfgate: {msg}");
    eprintln!("usage: perfgate --current <report.json> [--baseline <baseline.json>] [--threshold-pct N] [--update]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(current_path) = arg_str(&args, "--current") else {
        usage_error("--current <report.json> is required");
    };
    let baseline_path = arg_str(&args, "--baseline").unwrap_or(DEFAULT_BASELINE);
    let threshold_pct = match arg_str(&args, "--threshold-pct") {
        None => DEFAULT_THRESHOLD_PCT,
        Some(v) => match v.parse::<f64>() {
            Ok(t) if t.is_finite() && t >= 0.0 => t,
            _ => usage_error("--threshold-pct must be a non-negative number"),
        },
    };

    let current = match read_json_report(current_path) {
        Ok(r) => r,
        Err(e) => usage_error(&format!("cannot read current report `{current_path}`: {e}")),
    };

    if has_flag(&args, "--update") {
        // The same workload guard as gating: silently replacing the micro-workload
        // baseline with, say, a `--workload skewed` report would poison every later
        // gate run.  An intentional workload switch requires removing the old
        // baseline first, which makes the switch explicit in the diff.
        if let Ok(existing) = read_json_report(baseline_path) {
            if existing.workload != current.workload {
                usage_error(&format!(
                    "workload mismatch: baseline `{baseline_path}` measured `{}` but current \
                     `{current_path}` measured `{}`; delete the baseline first if the switch \
                     is intentional",
                    existing.workload, current.workload
                ));
            }
        }
        if let Err(e) = std::fs::copy(current_path, baseline_path) {
            usage_error(&format!("cannot update baseline `{baseline_path}`: {e}"));
        }
        println!("perfgate: baseline `{baseline_path}` updated from `{current_path}`");
        return;
    }

    let baseline = match read_json_report(baseline_path) {
        Ok(r) => r,
        Err(e) => usage_error(&format!(
            "cannot read baseline `{baseline_path}`: {e} (generate one with \
             `table1 --simulate --json {baseline_path}` or `perfgate --update`)"
        )),
    };

    // Burdens are only comparable when both reports measured the same loop body: an
    // irregular workload inflates a static schedule's *effective* burden by design,
    // so gating a `--workload skewed` report against the micro baseline (or updating
    // the baseline from one) would be a category error, not a regression.
    if baseline.workload != current.workload {
        usage_error(&format!(
            "workload mismatch: baseline `{baseline_path}` measured `{}` but current \
             `{current_path}` measured `{}`; regenerate the baseline for that workload \
             or gate a matching report",
            baseline.workload, current.workload
        ));
    }

    let outcome = compare_burdens(&baseline, &current, threshold_pct);
    println!(
        "perfgate: {} vs {} (threshold {threshold_pct}%, workload {})",
        current_path, baseline_path, current.workload
    );
    println!(
        "{:<40} {:>12} {:>12} {:>9}",
        "scheduler", "baseline us", "current us", "delta"
    );
    for row in &outcome.rows {
        let delta = row.delta_pct();
        let verdict = if delta > threshold_pct {
            "  REGRESSED"
        } else {
            ""
        };
        println!(
            "{:<40} {:>12.3} {:>12.3} {:>8.1}%{verdict}",
            row.scheduler, row.baseline_us, row.current_us, delta
        );
    }
    for row in &outcome.serve_rows {
        let verdict = if row.worst_delta_pct() > threshold_pct {
            "  REGRESSED"
        } else {
            ""
        };
        println!(
            "serve:{:<34} {:>10.0} -> {:>8.0} loops/s ({:+.1}%), p99 {:.1} -> {:.1} us ({:+.1}%){verdict}",
            row.scenario,
            row.baseline_lps,
            row.current_lps,
            row.throughput_drop_pct(),
            row.baseline_p99_us,
            row.current_p99_us,
            row.p99_rise_pct()
        );
    }
    for missing in &outcome.missing {
        println!("{missing:<40} missing from the current report  REGRESSED");
    }
    for added in &outcome.added {
        println!("{added:<40} new scheduler (not in baseline; consider `perfgate --update`)");
    }

    if outcome.passed() {
        println!(
            "perfgate: OK — no burden or serve scenario regressed by more than {threshold_pct}%"
        );
    } else {
        println!(
            "perfgate: FAILED — {} regression(s), {} missing row(s):",
            outcome.regressions().len() + outcome.serve_regressions().len(),
            outcome.missing.len()
        );
        // Row-by-row failure listing: every regressed row and every missing row by
        // name, so a multi-row failure is diagnosable from the log's last lines.
        for line in outcome.failure_lines() {
            println!("  {line}");
        }
        std::process::exit(1);
    }
}
