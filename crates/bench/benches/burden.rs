//! Criterion bench behind Table 1: the per-loop overhead of each scheduler, measured by
//! timing an (almost) empty parallel loop.  The per-invocation time is the scheduling
//! burden `d` directly (there is no work to amortise it against).

use criterion::{criterion_group, criterion_main, Criterion};
use parlo_core::BarrierKind;
use parlo_omp::{OmpTeam, Schedule};
use parlo_workloads::microbench::work_unit;
use std::time::Duration;

const ITERS: usize = 64;
const UNITS: usize = 1;

use parlo_bench::{bench_threads as threads, fine_grain_ablation_pool, fine_grain_ablations};

fn bench_burden(c: &mut Criterion) {
    let t = threads();
    let mut group = c.benchmark_group("table1_per_loop_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    // Table 1 measures the half-barrier flavors and the tree full-barrier ablation;
    // the centralized-full variant only appears in the `barriers` cycle bench.
    for (label, kind, hierarchical) in fine_grain_ablations()
        .into_iter()
        .filter(|&(_, kind, _)| kind != BarrierKind::CentralizedFull)
    {
        let mut pool = fine_grain_ablation_pool(t, kind, hierarchical);
        group.bench_function(label, |b| {
            b.iter(|| {
                let s = pool.parallel_reduce(
                    0..ITERS,
                    || 0.0f64,
                    |acc, i| acc + work_unit(i, UNITS),
                    |a, b| a + b,
                );
                criterion::black_box(s)
            })
        });
    }

    let mut team = OmpTeam::with_threads(t);
    group.bench_function("OpenMP static", |b| {
        b.iter(|| {
            let s = team.parallel_reduce(
                0..ITERS,
                Schedule::Static,
                || 0.0f64,
                |acc, i| acc + work_unit(i, UNITS),
                |a, b| a + b,
            );
            criterion::black_box(s)
        })
    });
    group.bench_function("OpenMP dynamic", |b| {
        b.iter(|| {
            let s = team.parallel_reduce(
                0..ITERS,
                Schedule::Dynamic(1),
                || 0.0f64,
                |acc, i| acc + work_unit(i, UNITS),
                |a, b| a + b,
            );
            criterion::black_box(s)
        })
    });

    let mut cilk = parlo_cilk::CilkPool::with_threads(t);
    group.bench_function("Cilk", |b| {
        b.iter(|| {
            let s = cilk.cilk_reduce(
                0..ITERS,
                || 0.0f64,
                |acc, i| acc + work_unit(i, UNITS),
                |a, b| a + b,
            );
            criterion::black_box(s)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_burden);
criterion_main!(benches);
