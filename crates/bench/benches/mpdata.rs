//! Criterion bench behind Figure 2: one MPDATA time step on the paper-sized mesh under
//! the fine-grain scheduler, the OpenMP-like team and sequentially.

use criterion::{criterion_group, criterion_main, Criterion};
use parlo_core::{FineGrainPool, Sequential};
use parlo_omp::ScheduledTeam;
use parlo_workloads::Mpdata;
use std::time::Duration;

use parlo_bench::bench_threads as threads;

fn bench_mpdata(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure2_mpdata_step");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let mut seq = Sequential;
    let mut solver = Mpdata::paper_problem();
    group.bench_function("sequential", |b| {
        b.iter(|| criterion::black_box(solver.step(&mut seq)))
    });

    let mut fine = FineGrainPool::with_threads(threads());
    let mut solver = Mpdata::paper_problem();
    group.bench_function("fine-grain", |b| {
        b.iter(|| criterion::black_box(solver.step(&mut fine)))
    });

    let mut omp = ScheduledTeam::with_threads(threads(), parlo_omp::Schedule::Static);
    let mut solver = Mpdata::paper_problem();
    group.bench_function("OpenMP static", |b| {
        b.iter(|| criterion::black_box(solver.step(&mut omp)))
    });

    group.finish();
}

criterion_group!(benches, bench_mpdata);
criterion_main!(benches);
