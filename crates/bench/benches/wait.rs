//! Criterion bench of the wait policies: one empty broadcast cycle (exactly one
//! fork/join half-barrier synchronization) per policy, at the pinned thread count and
//! at a deliberately oversubscribed one.  This is the bench behind the `Park` mode's
//! claim: no slower than spin-then-yield on the broadcast cycle, while burning far
//! less CPU time when workers outnumber hardware threads — the CPU-time diagnostic at
//! the end prints the measured cpu-seconds per wall-second per policy for an
//! idle-heavy cycle pattern (the serving shape: short loops separated by master-side
//! idle gaps).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use parlo_bench::{bench_threads, hardware_threads};
use parlo_core::{Config, FineGrainPool, WaitPolicy};
use std::time::{Duration, Instant};

fn policies() -> Vec<(&'static str, WaitPolicy)> {
    vec![
        ("spin-then-yield", WaitPolicy::default()),
        ("yield", WaitPolicy::oversubscribed()),
        ("park", WaitPolicy::park()),
    ]
}

fn pool_with(threads: usize, policy: WaitPolicy) -> FineGrainPool {
    FineGrainPool::new(Config::builder(threads).wait(policy).build())
}

/// Cumulative user+system CPU time of this process, seconds, from `/proc/self/stat`
/// (fields 14/15 after the parenthesized comm, in clock ticks; Linux fixes
/// `USER_HZ` at 100 for the architectures we run on).  `None` off Linux.
fn cpu_time_secs() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    let rest = stat.rsplit_once(')')?.1;
    let mut fields = rest.split_whitespace();
    // `rest` starts at field 3 (state); utime/stime are 1-based fields 14/15, i.e.
    // the 12th and 13th items of this iterator.
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// Prints cpu-seconds per wall-second per policy for an idle-heavy broadcast pattern
/// on an oversubscribed pool: cycles separated by master-side sleeps, so the waiting
/// behaviour between loops (spin vs yield vs park) dominates the CPU bill.
fn cpu_burn_diagnostic(threads: usize) {
    println!("\n== wait_cpu_burn (diagnostic, {threads} threads, idle-heavy cycles) ==");
    for (label, policy) in policies() {
        let mut pool = pool_with(threads, policy);
        // Warm the lease so attach costs stay out of the measured window.
        pool.broadcast(|info| {
            black_box(info.id);
        });
        let Some(cpu0) = cpu_time_secs() else {
            println!("{label:<44} (no /proc/self/stat; diagnostic skipped)");
            return;
        };
        let wall0 = Instant::now();
        for _ in 0..40 {
            pool.broadcast(|info| {
                black_box(info.id);
            });
            // The idle gap the policies differ on: workers wait here for the fork.
            std::thread::sleep(Duration::from_millis(2));
        }
        let wall = wall0.elapsed().as_secs_f64();
        let cpu = cpu_time_secs().unwrap_or(cpu0) - cpu0;
        println!(
            "{label:<44} {:.2} cpu-s per wall-s ({cpu:.2}s cpu over {wall:.2}s wall)",
            cpu / wall.max(1e-9)
        );
    }
}

fn bench_wait(c: &mut Criterion) {
    // One empty broadcast = one half-barrier fork/join cycle: the latency the paper's
    // burden d is made of.  First at the pinned thread count...
    let t = bench_threads();
    let mut group = c.benchmark_group("wait_broadcast");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
    for (label, policy) in policies() {
        let mut pool = pool_with(t, policy);
        group.bench_function(label, |b| {
            b.iter(|| {
                pool.broadcast(|info| {
                    black_box(info.id);
                })
            })
        });
    }
    group.finish();

    // ...then oversubscribed (more workers than hardware threads), the regime
    // WaitPolicy::auto_for selects Park for.
    let over = hardware_threads() * 2 + 2;
    let mut group = c.benchmark_group("wait_broadcast_oversubscribed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(150))
        .measurement_time(Duration::from_millis(400));
    for (label, policy) in policies() {
        let mut pool = pool_with(over, policy);
        group.bench_function(label, |b| {
            b.iter(|| {
                pool.broadcast(|info| {
                    black_box(info.id);
                })
            })
        });
    }
    group.finish();

    cpu_burn_diagnostic(over);
}

criterion_group!(benches, bench_wait);
criterion_main!(benches);
