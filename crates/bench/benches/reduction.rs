//! Criterion bench behind Figure 3: one fine-grain linear-regression map-reduce chunk
//! under every reduction implementation (fine-grain merged, OpenMP 3-barrier, baseline
//! Cilk reducers, hybrid fine-grain Cilk).

use criterion::{criterion_group, criterion_main, Criterion};
use parlo_workloads::phoenix::linear_regression as linreg;
use std::time::Duration;

const POINTS: usize = 65_536;

use parlo_bench::bench_threads as threads;

fn bench_reduction(c: &mut Criterion) {
    let points = linreg::generate_points(POINTS, 3.0, 7.0, 2.0, 0xBEEF);
    let t = threads();
    let mut group = c.benchmark_group("figure3_regression_chunk");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    group.bench_function("sequential", |b| {
        b.iter(|| criterion::black_box(linreg::sequential(&points)))
    });

    let mut pool = parlo_core::FineGrainPool::with_threads(t);
    group.bench_function("fine-grain (merged half-barrier)", |b| {
        b.iter(|| criterion::black_box(linreg::with_fine_grain(&mut pool, &points)))
    });

    let mut team = parlo_omp::OmpTeam::with_threads(t);
    group.bench_function("OpenMP static (3 full barriers)", |b| {
        b.iter(|| {
            criterion::black_box(linreg::with_omp(
                &mut team,
                parlo_omp::Schedule::Static,
                &points,
            ))
        })
    });

    let mut cilk = parlo_cilk::CilkPool::with_threads(t);
    group.bench_function("Cilk baseline reducers", |b| {
        b.iter(|| criterion::black_box(linreg::with_cilk_baseline(&mut cilk, &points)))
    });
    group.bench_function("fine-grain Cilk (hybrid)", |b| {
        b.iter(|| criterion::black_box(linreg::with_cilk_fine_grain(&mut cilk, &points)))
    });

    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
