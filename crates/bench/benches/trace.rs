//! Criterion bench of the trace-emission hot path: the cost of one recorded event
//! (instant, span begin+end pair, counter) with tracing armed, the cost of the same
//! call with tracing compiled in but runtime-disabled (one relaxed flag load), and
//! an instrumented fine-grain loop cycle against the trace-off baseline of
//! `barrier_cycle` in `barriers.rs`.  This is the number behind the overhead-guard
//! test in `tests/trace_battery.rs`.

use criterion::{criterion_group, criterion_main, Criterion};
use parlo_bench::bench_threads as threads;
use parlo_core::FineGrainPool;
use parlo_trace::Phase;
use std::time::Duration;

fn bench_trace_emission(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_emit");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));

    parlo_trace::enable();
    parlo_trace::set_thread_label("bench-trace-emit");
    group.bench_function("instant/enabled", |b| {
        b.iter(|| parlo_trace::instant(Phase::StealSweep, criterion::black_box(1), 2))
    });
    group.bench_function("span_pair/enabled", |b| {
        b.iter(|| {
            parlo_trace::span_begin(Phase::Loop, criterion::black_box(1), 2);
            parlo_trace::span_end(Phase::Loop);
        })
    });
    group.bench_function("counter/enabled", |b| {
        b.iter(|| parlo_trace::counter(Phase::QueueDepth, criterion::black_box(3)))
    });

    parlo_trace::disable();
    // With the flag down the call is one relaxed load and a branch (or, without the
    // `trace` feature, nothing at all).
    group.bench_function("instant/disabled", |b| {
        b.iter(|| parlo_trace::instant(Phase::StealSweep, criterion::black_box(1), 2))
    });
    group.finish();

    let mut group = c.benchmark_group("trace_loop_cycle");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));
    // One empty fork/join cycle with tracing armed vs disarmed: the gap is the
    // whole-cycle cost of the hooks (a handful of events per cycle).
    let mut pool = FineGrainPool::with_threads(threads());
    parlo_trace::enable();
    group.bench_function("broadcast/traced", |b| {
        b.iter(|| {
            pool.broadcast(|info| {
                criterion::black_box(info.id);
            })
        })
    });
    parlo_trace::disable();
    group.bench_function("broadcast/untraced", |b| {
        b.iter(|| {
            pool.broadcast(|info| {
                criterion::black_box(info.id);
            })
        })
    });
    group.finish();
    parlo_trace::clear();
}

criterion_group!(benches, bench_trace_emission);
criterion_main!(benches);
