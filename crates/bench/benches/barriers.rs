//! Criterion bench of the barrier primitives themselves: one release+join cycle of the
//! half-barrier (tree and centralized) against one full-barrier cycle, plus the classic
//! stand-alone barriers.  This is the ablation behind the "half vs full" design choice.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use parlo_bench::{bench_threads as threads, fine_grain_ablation_pool, fine_grain_ablations};

fn bench_barriers(c: &mut Criterion) {
    let t = threads();
    let mut group = c.benchmark_group("barrier_cycle");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(500));

    // An empty broadcast is exactly one fork/join synchronization cycle of the pool.
    // The shared ablation list covers the tree half-barrier in both layouts
    // (hierarchical and flat) plus the centralized and full-barrier variants.
    for (label, kind, hierarchical) in fine_grain_ablations() {
        let mut pool = fine_grain_ablation_pool(t, kind, hierarchical);
        group.bench_function(label, |b| {
            b.iter(|| {
                pool.broadcast(|info| {
                    criterion::black_box(info.id);
                })
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("standalone_barrier_wait");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    // Single-participant wait cost of each stand-alone barrier implementation (the
    // multi-thread behaviour is covered by the pool benches above and by the tests).
    use parlo_barrier::{Barrier, CounterBarrier, DisseminationBarrier, SenseBarrier, TreeBarrier};
    let sense = SenseBarrier::new(1);
    group.bench_function("sense-reversing", |b| b.iter(|| sense.wait(0)));
    let counter = CounterBarrier::new(1);
    group.bench_function("counter", |b| b.iter(|| counter.wait(0)));
    let tree = TreeBarrier::new(1, 4);
    group.bench_function("mcs-tree", |b| b.iter(|| tree.wait(0)));
    let diss = DisseminationBarrier::new(1);
    group.bench_function("dissemination", |b| b.iter(|| diss.wait(0)));
    group.finish();
}

criterion_group!(benches, bench_barriers);
criterion_main!(benches);
