//! Criterion bench of the Chase–Lev work-stealing deque: owner push/pop throughput and
//! steal cost — the substrate behind the Cilk baseline's burden.

use criterion::{criterion_group, criterion_main, Criterion};
use parlo_cilk::WorkStealingDeque;
use std::time::Duration;

fn bench_deque(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase_lev_deque");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));

    let deque: WorkStealingDeque<usize> = WorkStealingDeque::new(4096);
    group.bench_function("push_pop_pair", |b| {
        // SAFETY: the bench thread is the deque's owner; no thieves are running.
        b.iter(|| unsafe {
            deque.push(criterion::black_box(7usize)).unwrap();
            criterion::black_box(deque.pop())
        })
    });

    group.bench_function("push_steal_pair", |b| {
        b.iter(|| {
            // SAFETY: the bench thread is the deque's owner; no thieves are running.
            unsafe { deque.push(criterion::black_box(7usize)).unwrap() };
            criterion::black_box(deque.steal().success())
        })
    });

    group.bench_function("steal_empty", |b| {
        b.iter(|| criterion::black_box(deque.steal().success()))
    });

    group.finish();
}

criterion_group!(benches, bench_deque);
criterion_main!(benches);
