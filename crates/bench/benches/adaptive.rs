//! Criterion bench for the adaptive selection runtime: per-loop cost of a calibrated
//! `AdaptivePool` on a fine-grain loop, next to the fixed backends it routes between.
//! After calibration the adaptive per-loop time should track the best fixed backend
//! (the routing decision is made once per site, not per call).

use criterion::{criterion_group, criterion_main, Criterion};
use parlo_adaptive::{AdaptiveConfig, AdaptivePool, LoopSite};
use parlo_bench::bench_threads as threads;
use parlo_core::FineGrainPool;
use parlo_omp::{OmpTeam, Schedule};
use parlo_workloads::microbench::work_unit;
use std::time::Duration;

const ITERS: usize = 64;
const UNITS: usize = 1;

fn bench_adaptive(c: &mut Criterion) {
    let t = threads();
    let mut group = c.benchmark_group("adaptive_routing_per_loop");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    // Disable periodic re-probing so the timed samples measure routed executions
    // only, matching the premise above (the default interval would re-calibrate
    // hundreds of times inside the measurement window of a microsecond loop).
    let mut config = AdaptiveConfig::with_threads(t);
    config.reprobe_interval = u64::MAX;
    let mut adaptive = AdaptivePool::new(config);
    let site = LoopSite::new(0xADA);
    // Calibrate the site up front so the measurement reflects routed executions.
    for _ in 0..8 {
        let s = adaptive.parallel_sum_at(site, 0..ITERS, |i| work_unit(i, UNITS));
        criterion::black_box(s);
    }
    if let Some(d) = adaptive.decision(site) {
        println!(
            "adaptive: site routed to {} (predicted {:.2} us/loop)",
            d.backend.label(),
            d.predicted_secs * 1e6
        );
    }
    group.bench_function("adaptive (routed)", |b| {
        b.iter(|| {
            let s = adaptive.parallel_sum_at(site, 0..ITERS, |i| work_unit(i, UNITS));
            criterion::black_box(s)
        })
    });

    let mut fine = FineGrainPool::with_threads(t);
    group.bench_function("fine-grain (fixed)", |b| {
        b.iter(|| {
            let s = fine.parallel_sum(0..ITERS, |i| work_unit(i, UNITS));
            criterion::black_box(s)
        })
    });

    let mut team = OmpTeam::with_threads(t);
    group.bench_function("OpenMP static (fixed)", |b| {
        b.iter(|| {
            let s = team.parallel_reduce(
                0..ITERS,
                Schedule::Static,
                || 0.0f64,
                |acc, i| acc + work_unit(i, UNITS),
                |a, b| a + b,
            );
            criterion::black_box(s)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
