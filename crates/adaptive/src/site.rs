//! Loop-site identity: the key calibration state is indexed by.

/// Identifies one loop site — a static location in the program whose executions share
/// granularity characteristics and therefore one routing decision.
///
/// Sites are plain 64-bit ids.  Use [`LoopSite::new`] with any stable number, derive
/// one from a source location with [`LoopSite::from_location`] (or the
/// [`loop_site!`](crate::loop_site) macro), or let the [`LoopRuntime`] facade derive a
/// granularity-keyed site automatically.
///
/// [`LoopRuntime`]: parlo_core::LoopRuntime
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopSite(pub u64);

impl LoopSite {
    /// A site with an explicit id.
    pub const fn new(id: u64) -> Self {
        LoopSite(id)
    }

    /// Derives a site id from a source location (FNV-1a over file/line/column).
    pub fn from_location(file: &str, line: u32, column: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in file
            .as_bytes()
            .iter()
            .copied()
            .chain(line.to_le_bytes())
            .chain(column.to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        LoopSite(h)
    }

    /// Derives a site from a loop's shape when no explicit site is available (used by
    /// the `LoopRuntime` facade): loops are bucketed by kind and by the power of two of
    /// their iteration count, so same-granularity anonymous loops share calibration.
    pub(crate) fn from_shape(kind: u64, len: usize) -> Self {
        let bucket = usize::BITS - len.max(1).leading_zeros();
        LoopSite(0x5150_0000_0000_0000 | (kind << 32) | bucket as u64)
    }
}

/// Expands to a [`LoopSite`] derived from the macro invocation's source location.
#[macro_export]
macro_rules! loop_site {
    () => {
        $crate::LoopSite::from_location(file!(), line!(), column!())
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_sites_are_stable_and_distinct() {
        let a = LoopSite::from_location("a.rs", 1, 1);
        assert_eq!(a, LoopSite::from_location("a.rs", 1, 1));
        assert_ne!(a, LoopSite::from_location("a.rs", 2, 1));
        assert_ne!(a, LoopSite::from_location("b.rs", 1, 1));
    }

    #[test]
    fn macro_sites_differ_per_invocation() {
        let a = loop_site!();
        let b = loop_site!();
        assert_ne!(a, b, "different lines yield different sites");
    }

    #[test]
    fn shape_sites_bucket_by_magnitude() {
        assert_eq!(
            LoopSite::from_shape(0, 1000),
            LoopSite::from_shape(0, 1023),
            "same power-of-two bucket"
        );
        assert_ne!(LoopSite::from_shape(0, 512), LoopSite::from_shape(0, 2048));
        assert_ne!(LoopSite::from_shape(0, 512), LoopSite::from_shape(1, 512));
    }
}
