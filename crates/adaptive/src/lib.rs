//! # parlo-adaptive — online scheduler selection over the unified `LoopRuntime` trait
//!
//! The paper's central result is that *which* loop scheduler wins is a function of the
//! loop's granularity `T`: the burden model `S = T / (d + T/P)` says a runtime with
//! per-loop burden `d` runs a loop of sequential duration `T` on `P` threads in
//! `d + T/P` seconds.  A micro-second loop wants the fine-grain half-barrier scheduler
//! (`d ≈ 5.7 µs` in Table 1); a coarse, load-imbalanced loop wants dynamic scheduling
//! or work stealing, whose larger `d` is amortised and whose balancing shrinks the
//! effective `T/P` term.
//!
//! [`AdaptivePool`] makes that choice *online, per loop site*.  It owns one instance of
//! every backend (the fine-grain pool, the OpenMP-like team, the Cilk-like pool) and,
//! for each distinct [`LoopSite`]:
//!
//! 1. **calibrates** — times one sequential execution (the site's `T`) and then one
//!    execution per candidate backend, each a perfectly ordinary run of the loop (every
//!    index is executed exactly once, so calibration never changes results);
//! 2. **fits** — turns each probe into a [`BurdenMeasurement`] and runs the
//!    least-squares [`fit_burden`] machinery from `parlo-analysis`, recovering the
//!    site-specific burden `d_b` of every backend (for an imbalanced loop a static
//!    backend's *effective* burden also absorbs the straggler time, which is exactly
//!    what routing should penalise);
//! 3. **routes** — thereafter runs the site on the backend minimising the predicted
//!    time `d_b + T/P` (sequential execution, predicted `T`, is also a candidate: a
//!    loop smaller than every burden should not be parallelised at all), with a
//!    granularity-derived chunk size for the dynamic backends;
//! 4. **re-probes** — after [`AdaptiveConfig::reprobe_interval`] routed executions,
//!    or immediately after a few consecutive routed executions run far slower than
//!    predicted (drift detection), the site is re-calibrated from fresh
//!    measurements, so phase changes (MPDATA alternating micro-second node loops
//!    with millisecond edge loops, say) are re-detected.
//!
//! Probe timing goes through the [`ProbeTimer`] hook; the default [`WallClock`] uses
//! real elapsed time, while tests inject a deterministic cost model so routing
//! behaviour is reproducible on any machine.
//!
//! [`BurdenMeasurement`]: parlo_analysis::BurdenMeasurement
//! [`fit_burden`]: parlo_analysis::fit_burden
//!
//! ## Quick start
//!
//! ```
//! use parlo_adaptive::{AdaptivePool, LoopSite};
//!
//! let mut pool = AdaptivePool::with_threads(2);
//! let site = LoopSite::new(1);
//! let data: Vec<u64> = (0..4096).collect();
//! // The first calls calibrate (sequential + one probe per backend), later calls are
//! // routed to the fitted-best backend. Results are identical throughout.
//! for _ in 0..8 {
//!     let sum = pool.parallel_sum_at(site, 0..data.len(), &|i| data[i] as f64);
//!     assert_eq!(sum, (4095.0 * 4096.0) / 2.0);
//! }
//! assert!(pool.decision(site).is_some());
//! ```

#![warn(missing_docs)]

mod pool;
mod site;
mod timer;

pub use pool::{gang_size_hint, AdaptiveConfig, AdaptivePool, AdaptiveStats, Decision};
pub use site::LoopSite;
pub use timer::{ProbeTimer, WallClock};

// Re-export the trait the whole design hangs on, so depending on `parlo-adaptive`
// alone is enough to drive the pool generically.
pub use parlo_core::{LoopRuntime, SyncStats};

/// A candidate backend of the adaptive runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Inline sequential execution on the master thread (no scheduling burden at all —
    /// the right choice when `T` is smaller than every backend's burden).
    Sequential,
    /// The paper's fine-grain half-barrier scheduler (static block partition).
    FineGrain,
    /// The OpenMP-like team with `schedule(static)`.
    OmpStatic,
    /// The OpenMP-like team with `schedule(dynamic, chunk)`; the chunk size is derived
    /// from the loop's granularity at execution time.
    OmpDynamic,
    /// The OpenMP-like team with `schedule(guided, chunk)`.
    OmpGuided,
    /// The work-stealing chunk pool (pre-split per-worker deques, owner-LIFO /
    /// thief-FIFO, half-barrier completion).
    Steal,
    /// The Cilk-like work-stealing pool (recursive splitting, random stealing).
    CilkSteal,
}

impl Backend {
    /// Every backend, in probe order.
    pub const ALL: [Backend; 7] = [
        Backend::Sequential,
        Backend::FineGrain,
        Backend::OmpStatic,
        Backend::OmpDynamic,
        Backend::OmpGuided,
        Backend::Steal,
        Backend::CilkSteal,
    ];

    /// The default candidate set probed for every site: one representative per
    /// scheduling family (guided is skipped to keep calibration short; opt in through
    /// [`AdaptiveConfig::backends`]).
    pub const DEFAULT: [Backend; 5] = [
        Backend::FineGrain,
        Backend::OmpStatic,
        Backend::OmpDynamic,
        Backend::Steal,
        Backend::CilkSteal,
    ];

    /// Short human-readable label (report/diagnostic output).
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Sequential => "sequential",
            Backend::FineGrain => "fine-grain",
            Backend::OmpStatic => "omp-static",
            Backend::OmpDynamic => "omp-dynamic",
            Backend::OmpGuided => "omp-guided",
            Backend::Steal => "steal",
            Backend::CilkSteal => "cilk-steal",
        }
    }
}
