//! Probe timing hook.

use crate::{Backend, LoopSite};

/// Converts a probe's measured wall-clock time into the time calibration records.
///
/// The default, [`WallClock`], passes the measurement through unchanged.  Tests (and
/// simulation-driven experiments) substitute a deterministic cost model — routing then
/// depends only on the model, never on the noise of the machine running the test.
pub trait ProbeTimer: Send + Sync {
    /// Returns the seconds to record for a probe of `backend` at `site` over
    /// `iterations` loop iterations, given the measured wall-clock seconds.
    fn observe(&self, backend: Backend, site: LoopSite, iterations: usize, wall_secs: f64) -> f64;
}

/// The default timer: records real elapsed wall-clock time.
#[derive(Debug, Default, Clone, Copy)]
pub struct WallClock;

impl ProbeTimer for WallClock {
    fn observe(&self, _: Backend, _: LoopSite, _: usize, wall_secs: f64) -> f64 {
        wall_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_identity() {
        let t = WallClock;
        let s = t.observe(Backend::FineGrain, LoopSite::new(1), 64, 1.5e-6);
        assert_eq!(s, 1.5e-6);
    }
}
