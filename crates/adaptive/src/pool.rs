//! The adaptive pool: per-site calibration, burden fitting, and routing.

use crate::{Backend, LoopSite, ProbeTimer, WallClock};
use parlo_affinity::PlacementConfig;
use parlo_analysis::{fit_burden, BurdenFit, BurdenMeasurement};
use parlo_cilk::{default_grain, CilkPool};
use parlo_core::{FineGrainPool, LoopRuntime, SyncStats};
use parlo_exec::Executor;
use parlo_omp::{OmpTeam, Schedule};
use parlo_steal::StealPool;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of an [`AdaptivePool`].
#[derive(Clone)]
pub struct AdaptiveConfig {
    /// Threads per backend (master included).
    pub threads: usize,
    /// Candidate parallel backends probed per site, in probe order.  Sequential
    /// execution is always an implicit candidate and need not be listed.
    pub backends: Vec<Backend>,
    /// Probe executions per backend per calibration round.
    pub probes_per_backend: usize,
    /// Routed executions of a site before it is re-calibrated (phase-change
    /// detection).
    pub reprobe_interval: u64,
    /// Measurements retained per (site, backend) within one calibration round (older
    /// probes are dropped first).  Re-calibration starts from an empty set so a phase
    /// change is never averaged against stale probes.
    pub max_measurements: usize,
    /// Probe timing hook (wall clock by default; tests inject a cost model).
    pub timer: Arc<dyn ProbeTimer>,
    /// Worker placement shared by every backend (topology source, pin policy,
    /// hierarchical synchronization).
    pub placement: PlacementConfig,
    /// The worker substrate the backends lease their threads from.  `None` creates a
    /// private one — the backends still share it with *each other*, so an adaptive
    /// pool holds at most `threads − 1` worker threads, not four times that.  Pass the
    /// roster's executor to share with an entire evaluation.
    pub executor: Option<Arc<Executor>>,
}

impl AdaptiveConfig {
    /// A configuration with `threads` threads and defaults for everything else.
    pub fn with_threads(threads: usize) -> Self {
        AdaptiveConfig {
            threads: threads.max(1),
            backends: Backend::DEFAULT.to_vec(),
            probes_per_backend: 1,
            reprobe_interval: 512,
            max_measurements: 8,
            timer: Arc::new(WallClock),
            placement: PlacementConfig::default(),
            executor: None,
        }
    }
}

/// The gang size the burden model recommends for a loop with sequential time
/// `t_secs` and per-loop scheduling burden `burden_secs`, capped at `max` workers.
///
/// Under the paper's model a gang of `g` workers executes the loop in
/// `d + T/g` seconds.  Growing the gang past `g* = sqrt(T/d)` is wasteful for a
/// *shared* substrate: at `g*` the burden term `d` matched against the per-worker
/// work share `T/g` balance (both equal `sqrt(T*d)` when scaled by `g`), and every
/// additional worker removes less work than it could contribute to another
/// tenant's loop.  Hence the hint is `ceil(sqrt(T/d))` clamped to `[1, max]`,
/// with the degenerate cases resolved conservatively: a non-positive burden means
/// synchronization is free (take everything, `max`), a non-positive `T` means the
/// loop is trivial (take the minimum, 1).
pub fn gang_size_hint(t_secs: f64, burden_secs: f64, max: usize) -> usize {
    let max = max.max(1);
    if t_secs <= 0.0 {
        return 1;
    }
    if burden_secs <= 0.0 {
        return max;
    }
    let g = (t_secs / burden_secs).sqrt().ceil();
    if !g.is_finite() {
        return max;
    }
    (g as usize).clamp(1, max)
}

/// The routing decision calibrated for one loop site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The backend the site is routed to.
    pub backend: Backend,
    /// The granularity-derived chunk/grain size at decision time (dynamic backends
    /// recompute it from the actual iteration count of each routed call).
    pub chunk: usize,
    /// The predicted per-execution time `d + T/P` of the chosen backend, in seconds,
    /// at `calibrated_n` iterations.
    pub predicted_secs: f64,
    /// The fitted per-loop burden `d` of the chosen backend, in seconds (zero for
    /// sequential execution).  Fixed per loop: predictions for other iteration counts
    /// scale only the `T/P` work term.
    pub burden_secs: f64,
    /// The iteration count the prediction was made for.
    pub calibrated_n: usize,
}

parlo_core::stats_family! {
    /// Counters describing the adaptive runtime's own activity (probing vs routing).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct AdaptiveStats: "adaptive" {
        /// Distinct loop sites seen.
        pub sites: u64,
        /// Sequential calibration runs performed.
        pub seq_probes: u64,
        /// Parallel backend probes performed.
        pub probes: u64,
        /// Loop executions routed by a fitted decision.
        pub routed_loops: u64,
        /// Re-calibrations triggered by the re-probe interval.
        pub reprobes: u64,
    }
}

/// Calibration progress of one site.
#[derive(Debug, Clone, Copy)]
enum SitePhase {
    /// Next execution runs sequentially to (re-)estimate the site's `T`.
    SeqProbe,
    /// Next execution probes `backends[backend_idx]` (probe `done` of the round).
    Probing { backend_idx: usize, done: usize },
    /// Calibration complete; executions are routed by the decision.
    Routed,
}

#[derive(Debug, Default)]
struct BackendRecord {
    measurements: Vec<BurdenMeasurement>,
    fit: Option<BurdenFit>,
}

struct SiteState {
    /// Latest measured sequential time of the site, in seconds...
    seq_secs: f64,
    /// ...for a loop of this many iterations.  Probes and predictions for other
    /// iteration counts scale linearly (see [`SiteState::t_seq_for`]).
    seq_n: usize,
    phase: SitePhase,
    records: Vec<BackendRecord>,
    decision: Option<Decision>,
    routed_since_probe: u64,
    /// Consecutive routed executions observed far slower than predicted (drift).
    drift_strikes: u32,
}

impl SiteState {
    fn new(num_backends: usize) -> Self {
        SiteState {
            seq_secs: 0.0,
            seq_n: 0,
            phase: SitePhase::SeqProbe,
            records: (0..num_backends)
                .map(|_| BackendRecord::default())
                .collect(),
            decision: None,
            routed_since_probe: 0,
            drift_strikes: 0,
        }
    }

    /// The sequential-time estimate scaled to an `n`-iteration execution of the site
    /// (the calibration probe may have seen a different iteration count).
    fn t_seq_for(&self, n: usize) -> f64 {
        if self.seq_n == 0 {
            return self.seq_secs;
        }
        self.seq_secs * n as f64 / self.seq_n as f64
    }

    /// Re-enters calibration from scratch: the next execution is a sequential probe
    /// and the previous round's measurements are forgotten, so a changed workload is
    /// never averaged against stale probes.  The previous decision and fits are kept
    /// (stale but inspectable) until the new round completes.
    fn start_recalibration(&mut self) {
        self.routed_since_probe = 0;
        self.drift_strikes = 0;
        self.phase = SitePhase::SeqProbe;
        for record in &mut self.records {
            record.measurements.clear();
        }
    }
}

/// What the current execution of a site is for.
#[derive(Debug, Clone, Copy)]
enum Action {
    Probe(Backend),
    Routed(Backend),
}

impl Action {
    fn backend(&self) -> Backend {
        match *self {
            Action::Probe(b) | Action::Routed(b) => b,
        }
    }
}

/// Stable numeric code of a backend on the trace timeline: its position in
/// [`Backend::ALL`].
fn backend_trace_code(b: Backend) -> u64 {
    Backend::ALL.iter().position(|x| *x == b).unwrap_or(0) as u64
}

/// The online scheduler-selection runtime (see the crate docs for the algorithm).
///
/// Owns one instance of every backend family — the fine-grain half-barrier pool, the
/// OpenMP-like team and the Cilk-like work-stealing pool — and routes each
/// [`LoopSite`] to the backend the fitted burden model predicts fastest.  Every
/// execution, probe or routed, runs the loop exactly once, so adaptation never changes
/// results.
pub struct AdaptivePool {
    fine: FineGrainPool,
    team: OmpTeam,
    cilk: CilkPool,
    steal: StealPool,
    /// The substrate all four backends lease their workers from: the pool holds at
    /// most `threads − 1` live worker threads no matter how many backends it owns.
    executor: Arc<Executor>,
    backends: Vec<Backend>,
    probes_per_backend: usize,
    reprobe_interval: u64,
    max_measurements: usize,
    timer: Arc<dyn ProbeTimer>,
    threads: usize,
    sites: HashMap<LoopSite, SiteState>,
    stats: AdaptiveStats,
    /// Loops/reductions executed inline on the master (sequential probes and
    /// Sequential-routed calls), counted so `sync_stats` covers every execution.
    seq_loops: u64,
    seq_reductions: u64,
}

/// The granularity-derived chunk/grain size for the dynamic backends (the Cilkplus
/// heuristic: enough chunks for balance, few enough to amortise the dispenser).
fn chunk_for(n: usize, threads: usize) -> usize {
    default_grain(n, threads)
}

/// A routed execution counts as drifted when it runs this many times slower than its
/// (iteration-scaled) prediction.
const DRIFT_FACTOR: f64 = 4.0;

/// Consecutive drifted executions before an early re-calibration fires.
const DRIFT_STRIKES: u32 = 3;

/// Drift is only scored when the routed call's iteration count is within this factor
/// of the calibrated one (in either direction).  The prediction scales the work term
/// *linearly* in `n`, which is only trustworthy near the calibration point — cache
/// footprints and per-iteration costs shift across orders of magnitude, so a wildly
/// different `n` would rack up `drift_strikes` from prediction-scaling error alone
/// and trigger spurious re-calibration of a site whose workload never changed.
const DRIFT_N_WINDOW: f64 = 8.0;

impl AdaptivePool {
    /// Creates an adaptive pool with `threads` threads per backend and defaults for
    /// everything else.
    pub fn with_threads(threads: usize) -> Self {
        Self::new(AdaptiveConfig::with_threads(threads))
    }

    /// Creates an adaptive pool from an explicit configuration.
    pub fn new(config: AdaptiveConfig) -> Self {
        let threads = config.threads.max(1);
        let mut backends: Vec<Backend> = config
            .backends
            .iter()
            .copied()
            .filter(|&b| b != Backend::Sequential)
            .collect();
        if backends.is_empty() {
            backends = Backend::DEFAULT.to_vec();
        }
        let placement = config.placement;
        let executor = config
            .executor
            .clone()
            .unwrap_or_else(|| Executor::for_placement(&placement));
        AdaptivePool {
            fine: FineGrainPool::with_placement_on(threads, &placement, &executor),
            team: OmpTeam::with_placement_on(threads, &placement, &executor),
            cilk: CilkPool::with_placement_on(threads, &placement, &executor),
            steal: StealPool::with_placement_on(threads, &placement, &executor),
            executor,
            backends,
            probes_per_backend: config.probes_per_backend.max(1),
            reprobe_interval: config.reprobe_interval.max(1),
            max_measurements: config.max_measurements.max(1),
            timer: config.timer,
            threads,
            sites: HashMap::new(),
            stats: AdaptiveStats::default(),
            seq_loops: 0,
            seq_reductions: 0,
        }
    }

    /// Number of threads each backend uses (master included).
    pub fn num_threads(&self) -> usize {
        self.threads
    }

    /// The worker substrate shared by all four backends (and by whatever else the
    /// caller built on the same executor).
    pub fn executor(&self) -> &Arc<Executor> {
        &self.executor
    }

    /// The candidate parallel backends probed for every site, in probe order.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// The most recent routing decision for `site`, if calibration has completed at
    /// least once.  During a re-calibration round this is the *previous* round's
    /// decision (kept for observability) until the new fits replace it.
    pub fn decision(&self, site: LoopSite) -> Option<Decision> {
        self.sites.get(&site).and_then(|s| s.decision)
    }

    /// The most recently fitted burden of `backend` at `site`, if it has ever been
    /// probed and fitted (during a re-calibration round this is the previous round's
    /// fit).
    pub fn fitted_burden(&self, site: LoopSite, backend: Backend) -> Option<BurdenFit> {
        let state = self.sites.get(&site)?;
        let idx = self.backends.iter().position(|&b| b == backend)?;
        state.records[idx].fit
    }

    /// The latest measured sequential time of `site` (seconds), as measured by the
    /// most recent sequential probe (see the probe's iteration count in the second
    /// tuple element; predictions scale linearly in the iteration count).
    pub fn t_seq_estimate(&self, site: LoopSite) -> Option<(f64, usize)> {
        self.sites
            .get(&site)
            .filter(|s| s.seq_n > 0)
            .map(|s| (s.seq_secs, s.seq_n))
    }

    /// The gang size the burden model recommends for `site` when its loops are
    /// served from a shared substrate (see `parlo-serve`), or `None` before the
    /// site's first calibration completes.
    ///
    /// Uses the site's latest sequential-time estimate `T` and the winning
    /// backend's fitted burden `d` through [`gang_size_hint`]; `max` caps the hint
    /// at the workers a tenant may actually lease.
    pub fn gang_hint(&self, site: LoopSite, max: usize) -> Option<usize> {
        let (t_secs, _) = self.t_seq_estimate(site)?;
        let d = self.decision(site)?.burden_secs;
        Some(gang_size_hint(t_secs, d, max))
    }

    /// A snapshot of the adaptive runtime's own counters.
    pub fn adaptive_stats(&self) -> AdaptiveStats {
        AdaptiveStats {
            sites: self.sites.len() as u64,
            ..self.stats
        }
    }

    /// Statically scheduled parallel loop at an explicit [`LoopSite`].
    pub fn parallel_for_at<F>(&mut self, site: LoopSite, range: Range<usize>, body: F)
    where
        F: Fn(usize) + Sync,
    {
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return;
        }
        let action = self.next_action(site);
        let chunk = chunk_for(n, self.threads);
        let t0 = Instant::now();
        self.exec_for(action.backend(), chunk, range, &body);
        let wall = t0.elapsed().as_secs_f64();
        self.after_run(site, action, n, wall);
    }

    /// Parallel reduction at an explicit [`LoopSite`].  `init` must be the neutral
    /// element of `combine` (same contract as [`LoopRuntime::parallel_reduce`]).
    pub fn parallel_reduce_at<Fold, Comb>(
        &mut self,
        site: LoopSite,
        range: Range<usize>,
        init: f64,
        fold: Fold,
        combine: Comb,
    ) -> f64
    where
        Fold: Fn(f64, usize) -> f64 + Sync,
        Comb: Fn(f64, f64) -> f64 + Sync,
    {
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return init;
        }
        let action = self.next_action(site);
        let chunk = chunk_for(n, self.threads);
        let t0 = Instant::now();
        let result = self.exec_reduce(action.backend(), chunk, range, init, &fold, &combine);
        let wall = t0.elapsed().as_secs_f64();
        self.after_run(site, action, n, wall);
        result
    }

    /// Parallel sum of `f(i)` over `range` at an explicit [`LoopSite`].
    pub fn parallel_sum_at<F>(&mut self, site: LoopSite, range: Range<usize>, f: F) -> f64
    where
        F: Fn(usize) -> f64 + Sync,
    {
        self.parallel_reduce_at(site, range, 0.0, |acc, i| acc + f(i), |a, b| a + b)
    }

    /// Decides what the next execution of `site` is for (creating the site on first
    /// contact).
    fn next_action(&mut self, site: LoopSite) -> Action {
        let num_backends = self.backends.len();
        let state = self
            .sites
            .entry(site)
            .or_insert_with(|| SiteState::new(num_backends));
        match state.phase {
            SitePhase::SeqProbe => Action::Probe(Backend::Sequential),
            SitePhase::Probing { backend_idx, .. } => Action::Probe(self.backends[backend_idx]),
            SitePhase::Routed => Action::Routed(
                state
                    .decision
                    .expect("routed phase implies a decision")
                    .backend,
            ),
        }
    }

    /// Records the outcome of an execution and advances the site's phase machine.
    fn after_run(&mut self, site: LoopSite, action: Action, n: usize, wall: f64) {
        match action {
            Action::Routed(backend) => {
                self.stats.routed_loops += 1;
                parlo_trace::instant(
                    parlo_trace::Phase::Route,
                    site.0,
                    backend_trace_code(backend),
                );
                let observed = self.timer.observe(backend, site, n, wall).max(1e-12);
                let reprobe_interval = self.reprobe_interval;
                let threads = self.threads.max(1);
                let state = self.sites.get_mut(&site).expect("site exists");
                state.routed_since_probe += 1;
                // Drift detection: a routed execution far slower than its prediction
                // means the calibration no longer describes the site — e.g. the
                // per-iteration work grew, or an anonymous granularity bucket now
                // carries a heavier loop.  The prediction is re-evaluated at this
                // call's iteration count with the burden term held fixed (only the
                // work term scales — a shorter range must not shrink `d`).  Three
                // consecutive strikes trigger an early re-calibration; only the slow
                // side counts, so warm-vs-cold timing bias cannot trigger it.  Calls
                // whose `n` is outside the trust window of the linear scaling leave
                // the strike counter untouched in both directions (see
                // `DRIFT_N_WINDOW`): they can neither accuse the site of drifting
                // nor acquit it.
                let comparable = state.seq_n > 0 && {
                    let ratio = n as f64 / state.seq_n as f64;
                    (DRIFT_N_WINDOW.recip()..=DRIFT_N_WINDOW).contains(&ratio)
                };
                if comparable {
                    let p = threads as f64;
                    let predicted = state
                        .decision
                        .map(|d| {
                            let t_n = state.t_seq_for(n);
                            match d.backend {
                                Backend::Sequential => t_n,
                                _ => d.burden_secs + t_n / p,
                            }
                        })
                        .unwrap_or(observed);
                    if observed > predicted * DRIFT_FACTOR {
                        state.drift_strikes += 1;
                    } else {
                        state.drift_strikes = 0;
                    }
                }
                if state.routed_since_probe >= reprobe_interval
                    || state.drift_strikes >= DRIFT_STRIKES
                {
                    state.start_recalibration();
                    self.stats.reprobes += 1;
                    parlo_trace::instant(parlo_trace::Phase::Reprobe, site.0, 0);
                }
            }
            Action::Probe(Backend::Sequential) => {
                let secs = self
                    .timer
                    .observe(Backend::Sequential, site, n, wall)
                    .max(1e-12);
                self.stats.seq_probes += 1;
                parlo_trace::instant(
                    parlo_trace::Phase::Probe,
                    site.0,
                    backend_trace_code(Backend::Sequential),
                );
                let state = self.sites.get_mut(&site).expect("site exists");
                state.seq_secs = secs;
                state.seq_n = n;
                state.phase = SitePhase::Probing {
                    backend_idx: 0,
                    done: 0,
                };
            }
            Action::Probe(backend) => {
                let secs = self.timer.observe(backend, site, n, wall).max(1e-12);
                self.stats.probes += 1;
                parlo_trace::instant(
                    parlo_trace::Phase::Probe,
                    site.0,
                    backend_trace_code(backend),
                );
                let threads = self.threads;
                let max_measurements = self.max_measurements;
                let probes_per_backend = self.probes_per_backend;
                let num_backends = self.backends.len();
                let backends = self.backends.clone();
                let state = self.sites.get_mut(&site).expect("site exists");
                let SitePhase::Probing { backend_idx, done } = state.phase else {
                    unreachable!("probe action only issued in the probing phase")
                };
                // Scale the sequential estimate to this probe's iteration count: a
                // site may legally see different range lengths per call, and pairing
                // mismatched (T, t_par) would fit meaningless burdens.
                let t_seq = state.t_seq_for(n).max(1e-12);
                let record = &mut state.records[backend_idx];
                if record.measurements.len() >= max_measurements {
                    record.measurements.remove(0);
                }
                record.measurements.push(BurdenMeasurement {
                    t_seq,
                    speedup: t_seq / secs,
                });
                let done = done + 1;
                if done < probes_per_backend {
                    state.phase = SitePhase::Probing { backend_idx, done };
                } else if backend_idx + 1 < num_backends {
                    state.phase = SitePhase::Probing {
                        backend_idx: backend_idx + 1,
                        done: 0,
                    };
                } else {
                    Self::decide(state, &backends, threads, n);
                    state.phase = SitePhase::Routed;
                }
            }
        }
    }

    /// Fits every backend's burden from the site's measurements and picks the backend
    /// minimising the predicted execution time `d + T/P` at this calibration's
    /// iteration count (sequential execution, with predicted time `T`, is the
    /// implicit baseline candidate).
    fn decide(state: &mut SiteState, backends: &[Backend], threads: usize, n: usize) {
        let p = threads.max(1) as f64;
        let t_seq = state.t_seq_for(n);
        let mut best = Decision {
            backend: Backend::Sequential,
            chunk: 1,
            predicted_secs: t_seq,
            burden_secs: 0.0,
            calibrated_n: n,
        };
        for (idx, &backend) in backends.iter().enumerate() {
            let record = &mut state.records[idx];
            record.fit = fit_burden(&record.measurements, threads);
            if let Some(fit) = record.fit {
                let predicted = fit.burden + t_seq / p;
                if predicted < best.predicted_secs {
                    best = Decision {
                        backend,
                        chunk: chunk_for(n, threads),
                        predicted_secs: predicted,
                        burden_secs: fit.burden,
                        calibrated_n: n,
                    };
                }
            }
        }
        state.decision = Some(best);
    }

    /// Runs one loop on a concrete backend.
    fn exec_for(
        &mut self,
        backend: Backend,
        chunk: usize,
        range: Range<usize>,
        body: &(dyn Fn(usize) + Sync),
    ) {
        match backend {
            Backend::Sequential => {
                self.seq_loops += 1;
                for i in range {
                    body(i);
                }
            }
            Backend::FineGrain => self.fine.parallel_for(range, body),
            Backend::OmpStatic => self.team.parallel_for(range, Schedule::Static, body),
            Backend::OmpDynamic => self
                .team
                .parallel_for(range, Schedule::Dynamic(chunk), body),
            Backend::OmpGuided => self.team.parallel_for(range, Schedule::Guided(chunk), body),
            Backend::Steal => self.steal.steal_for_with_chunk(range, chunk, body),
            Backend::CilkSteal => self.cilk.cilk_for_with_grain(range, chunk, body),
        }
    }

    /// Runs one reduction on a concrete backend.
    fn exec_reduce(
        &mut self,
        backend: Backend,
        chunk: usize,
        range: Range<usize>,
        init: f64,
        fold: &(dyn Fn(f64, usize) -> f64 + Sync),
        combine: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> f64 {
        match backend {
            Backend::Sequential => {
                self.seq_loops += 1;
                self.seq_reductions += 1;
                let mut acc = init;
                for i in range {
                    acc = fold(acc, i);
                }
                acc
            }
            Backend::FineGrain => self.fine.parallel_reduce(range, || init, fold, combine),
            Backend::OmpStatic => {
                self.team
                    .parallel_reduce(range, Schedule::Static, || init, fold, combine)
            }
            Backend::OmpDynamic => {
                self.team
                    .parallel_reduce(range, Schedule::Dynamic(chunk), || init, fold, combine)
            }
            Backend::OmpGuided => {
                self.team
                    .parallel_reduce(range, Schedule::Guided(chunk), || init, fold, combine)
            }
            Backend::Steal => {
                self.steal
                    .steal_reduce_with_chunk(range, chunk, || init, fold, combine)
            }
            Backend::CilkSteal => {
                self.cilk
                    .cilk_reduce_with_grain(range, chunk, || init, fold, combine)
            }
        }
    }
}

impl LoopRuntime for AdaptivePool {
    fn name(&self) -> String {
        "adaptive".into()
    }

    fn threads(&self) -> usize {
        self.num_threads()
    }

    /// Anonymous loops are bucketed into granularity-keyed sites (kind + power of two
    /// of the iteration count); use [`AdaptivePool::parallel_for_at`] for precise
    /// per-call-site calibration.
    fn parallel_for(&mut self, range: Range<usize>, body: &(dyn Fn(usize) + Sync)) {
        let site = LoopSite::from_shape(0, range.end.saturating_sub(range.start));
        self.parallel_for_at(site, range, body);
    }

    fn parallel_reduce(
        &mut self,
        range: Range<usize>,
        init: f64,
        fold: &(dyn Fn(f64, usize) -> f64 + Sync),
        combine: &(dyn Fn(f64, f64) -> f64 + Sync),
    ) -> f64 {
        let site = LoopSite::from_shape(1, range.end.saturating_sub(range.start));
        self.parallel_reduce_at(site, range, init, fold, combine)
    }

    fn sync_stats(&self) -> SyncStats {
        let sequential = SyncStats {
            loops: self.seq_loops,
            reductions: self.seq_reductions,
            ..SyncStats::default()
        };
        self.fine
            .sync_stats()
            .merged(&SyncStats::from(self.team.stats()))
            .merged(&self.cilk.sync_stats())
            .merged(&self.steal.sync_stats())
            .merged(&sequential)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlo_sync::{AtomicUsize, Ordering};

    #[test]
    fn gang_size_hint_follows_the_burden_model() {
        // g* = ceil(sqrt(T/d)): T = 100us, d = 1us -> sqrt(100) = 10.
        assert_eq!(gang_size_hint(100e-6, 1e-6, 16), 10);
        // Clamped by the available workers.
        assert_eq!(gang_size_hint(100e-6, 1e-6, 4), 4);
        // Non-square ratios round up: sqrt(50) ~ 7.07 -> 8.
        assert_eq!(gang_size_hint(50e-6, 1e-6, 16), 8);
        // A loop barely worth parallelising still gets at least one worker.
        assert_eq!(gang_size_hint(1e-9, 1e-6, 16), 1);
    }

    #[test]
    fn gang_size_hint_degenerate_inputs() {
        // Trivial loop: minimum gang.
        assert_eq!(gang_size_hint(0.0, 1e-6, 8), 1);
        assert_eq!(gang_size_hint(-1.0, 1e-6, 8), 1);
        // Free synchronization: take everything available.
        assert_eq!(gang_size_hint(1e-3, 0.0, 8), 8);
        assert_eq!(gang_size_hint(1e-3, -1e-9, 8), 8);
        // A zero cap still means one worker.
        assert_eq!(gang_size_hint(1e-3, 1e-6, 0), 1);
    }

    /// A deterministic cost model: per-backend burden plus perfectly parallel work,
    /// with `work_per_iter` seconds per iteration.
    struct FixedBurdens {
        work_per_iter: f64,
        threads: usize,
    }

    impl ProbeTimer for FixedBurdens {
        fn observe(&self, backend: Backend, _: LoopSite, n: usize, _: f64) -> f64 {
            let t = self.work_per_iter * n as f64;
            let p = self.threads as f64;
            match backend {
                Backend::Sequential => t,
                Backend::FineGrain => 5.67e-6 + t / p,
                Backend::OmpStatic => 8.12e-6 + t / p,
                Backend::OmpDynamic => 31.94e-6 + t / p,
                Backend::OmpGuided => 20.0e-6 + t / p,
                Backend::Steal => 12.94e-6 + t / p,
                Backend::CilkSteal => 68.80e-6 + t / p,
            }
        }
    }

    fn sim_pool(threads: usize, work_per_iter: f64) -> AdaptivePool {
        let mut config = AdaptiveConfig::with_threads(threads);
        config.timer = Arc::new(FixedBurdens {
            work_per_iter,
            threads,
        });
        AdaptivePool::new(config)
    }

    #[test]
    fn every_phase_executes_the_loop_exactly_once() {
        let mut pool = AdaptivePool::with_threads(3);
        let site = LoopSite::new(7);
        // 1 sequential probe + 5 backend probes + several routed runs.
        for round in 0..10 {
            let hits: Vec<AtomicUsize> = (0..277).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for_at(site, 0..277, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "round {round}"
            );
        }
        let stats = pool.adaptive_stats();
        assert_eq!(stats.sites, 1);
        assert_eq!(stats.seq_probes, 1);
        assert_eq!(stats.probes, 5, "one probe per default backend");
        assert_eq!(stats.routed_loops, 4);
        assert!(pool.decision(site).is_some());
    }

    #[test]
    fn reductions_stay_correct_through_calibration_and_routing() {
        let mut pool = AdaptivePool::with_threads(4);
        let site = LoopSite::new(9);
        let expected: f64 = (0..1000).map(|i| i as f64).sum();
        for _ in 0..8 {
            let got = pool.parallel_sum_at(site, 0..1000, |i| i as f64);
            assert!((got - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn micro_loops_route_to_the_fine_grain_backend() {
        let mut pool = sim_pool(4, 1e-6);
        let site = LoopSite::new(1);
        for _ in 0..6 {
            pool.parallel_for_at(site, 0..64, |_| {});
        }
        let d = pool.decision(site).expect("calibrated");
        assert_eq!(d.backend, Backend::FineGrain);
        // The fitted burden matches the cost model's fine-grain burden.
        let fit = pool.fitted_burden(site, Backend::FineGrain).expect("fit");
        assert!((fit.burden - 5.67e-6).abs() / 5.67e-6 < 0.05, "{fit:?}");
    }

    #[test]
    fn tiny_loops_route_to_sequential_execution() {
        // 4 iterations of 0.1 µs: T = 0.4 µs, smaller than every backend burden.
        let mut pool = sim_pool(4, 1e-7);
        let site = LoopSite::new(2);
        for _ in 0..6 {
            pool.parallel_for_at(site, 0..4, |_| {});
        }
        let d = pool.decision(site).expect("calibrated");
        assert_eq!(d.backend, Backend::Sequential);
    }

    #[test]
    fn reprobe_interval_triggers_recalibration() {
        let mut config = AdaptiveConfig::with_threads(2);
        config.reprobe_interval = 3;
        let mut pool = AdaptivePool::new(config);
        let site = LoopSite::new(3);
        // 6 calibration runs + 3 routed runs -> reprobe -> more calibration runs.
        for _ in 0..16 {
            pool.parallel_for_at(site, 0..128, |_| {});
        }
        let stats = pool.adaptive_stats();
        assert!(stats.reprobes >= 1, "{stats:?}");
        assert!(stats.seq_probes >= 2, "{stats:?}");
        assert!(pool.decision(site).is_some());
    }

    #[test]
    fn drift_triggers_early_recalibration() {
        use parlo_sync::AtomicU64;
        /// Cost model whose per-iteration work can be changed mid-run (femtoseconds,
        /// so the atomic holds an integer).
        struct ScaledModel {
            per_iter_fs: AtomicU64,
            threads: usize,
        }
        impl ProbeTimer for ScaledModel {
            fn observe(&self, backend: Backend, _: LoopSite, n: usize, _: f64) -> f64 {
                let t = self.per_iter_fs.load(Ordering::Relaxed) as f64 * 1e-15 * n as f64;
                let p = self.threads as f64;
                match backend {
                    Backend::Sequential => t,
                    Backend::FineGrain => 5.67e-6 + t / p,
                    Backend::OmpStatic => 8.12e-6 + t / p,
                    Backend::OmpDynamic => 31.94e-6 + t / p,
                    Backend::OmpGuided => 20.0e-6 + t / p,
                    Backend::Steal => 12.94e-6 + t / p,
                    Backend::CilkSteal => 68.80e-6 + t / p,
                }
            }
        }

        let model = std::sync::Arc::new(ScaledModel {
            per_iter_fs: AtomicU64::new(100_000_000), // 0.1 us/iter: tiny loop
            threads: 4,
        });
        let mut config = AdaptiveConfig::with_threads(4);
        config.timer = model.clone();
        config.reprobe_interval = u64::MAX; // only drift can trigger re-calibration
        let mut pool = AdaptivePool::new(config);
        let site = LoopSite::new(11);
        for _ in 0..6 {
            pool.parallel_for_at(site, 0..64, |_| {});
        }
        assert_eq!(
            pool.decision(site).unwrap().backend,
            Backend::Sequential,
            "a 6.4 us loop is below every backend burden"
        );

        // The loop body becomes 100x heavier: routed executions now run far slower
        // than predicted, which must trigger re-calibration without waiting for the
        // (disabled) interval.
        model.per_iter_fs.store(10_000_000_000, Ordering::Relaxed); // 10 us/iter
        for _ in 0..9 {
            pool.parallel_for_at(site, 0..64, |_| {});
        }
        assert!(pool.adaptive_stats().reprobes >= 1);
        assert_eq!(
            pool.decision(site).unwrap().backend,
            Backend::FineGrain,
            "a 640 us loop routes to the lowest-burden parallel backend"
        );
    }

    #[test]
    fn anonymous_loops_work_behind_dyn_loop_runtime() {
        let mut pool = AdaptivePool::with_threads(2);
        let rt: &mut dyn LoopRuntime = &mut pool;
        assert_eq!(rt.name(), "adaptive");
        assert_eq!(rt.threads(), 2);
        for _ in 0..3 {
            let hits: Vec<AtomicUsize> = (0..300).map(|_| AtomicUsize::new(0)).collect();
            rt.parallel_for(0..300, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
        let sum = rt.parallel_sum(0..500, &|i| i as f64);
        assert!((sum - (499.0 * 500.0 / 2.0)).abs() < 1e-9);
        assert!(rt.sync_stats().loops >= 1);
    }

    #[test]
    fn empty_ranges_are_noops() {
        let mut pool = AdaptivePool::with_threads(2);
        let site = LoopSite::new(4);
        pool.parallel_for_at(site, 10..10, |_| panic!("must not run"));
        let got = pool.parallel_reduce_at(site, 5..5, 1.5, |_, _| panic!(), |a, _| a);
        assert_eq!(got, 1.5);
        assert_eq!(pool.adaptive_stats().sites, 0, "no site state created");
    }

    #[test]
    fn all_backends_share_one_worker_substrate() {
        let threads = 4;
        let mut pool = AdaptivePool::with_threads(threads);
        let site = LoopSite::new(21);
        // Drive the full calibration round so every parallel backend runs at least
        // one loop (sequential probe + one probe per backend + routed calls).
        for _ in 0..8 {
            pool.parallel_for_at(site, 0..256, |_| {});
        }
        let stats = pool.executor().stats();
        assert!(
            stats.workers < threads,
            "4 live backends must hold at most P-1 worker threads, got {stats:?}"
        );
        assert_eq!(stats.leases, 4, "one lease per backend");
        assert!(
            stats.switches >= 4,
            "probing rotates the lease through the backends: {stats:?}"
        );
    }

    #[test]
    fn drift_is_not_scored_on_wildly_different_iteration_counts() {
        use parlo_sync::AtomicU64;
        /// A model whose per-iteration cost is 10x higher beyond 1k iterations —
        /// linear scaling from a small-n calibration under-predicts large-n calls by
        /// far more than DRIFT_FACTOR, but the workload itself never changes.
        struct NonLinearModel {
            threads: usize,
            observes: AtomicU64,
        }
        impl ProbeTimer for NonLinearModel {
            fn observe(&self, backend: Backend, _: LoopSite, n: usize, _: f64) -> f64 {
                self.observes.fetch_add(1, Ordering::Relaxed);
                let per_iter = if n > 1000 { 1e-5 } else { 1e-6 };
                let t = per_iter * n as f64;
                let p = self.threads as f64;
                match backend {
                    Backend::Sequential => t,
                    Backend::FineGrain => 5.67e-6 + t / p,
                    Backend::OmpStatic => 8.12e-6 + t / p,
                    Backend::OmpDynamic => 31.94e-6 + t / p,
                    Backend::OmpGuided => 20.0e-6 + t / p,
                    Backend::Steal => 12.94e-6 + t / p,
                    Backend::CilkSteal => 68.80e-6 + t / p,
                }
            }
        }

        let mut config = AdaptiveConfig::with_threads(4);
        config.timer = Arc::new(NonLinearModel {
            threads: 4,
            observes: AtomicU64::new(0),
        });
        config.reprobe_interval = u64::MAX; // only drift could trigger re-calibration
        let mut pool = AdaptivePool::new(config);
        let site = LoopSite::new(13);
        // Calibrate at n = 64, then alternate routed calls at a 1000x larger n with
        // calls at the calibrated n.  The large-n calls run 10x slower per iteration
        // than the linear prediction, but must not strike: their n is far outside
        // the trust window of the linear scaling.
        for _ in 0..6 {
            pool.parallel_for_at(site, 0..64, |_| {});
        }
        assert!(pool.decision(site).is_some(), "calibrated");
        for _ in 0..12 {
            pool.parallel_for_at(site, 0..64_000, |_| {});
            pool.parallel_for_at(site, 0..64, |_| {});
        }
        assert_eq!(
            pool.adaptive_stats().reprobes,
            0,
            "benign n changes must not trigger spurious re-calibration"
        );
    }

    #[test]
    fn config_sanitises_degenerate_values() {
        let mut config = AdaptiveConfig::with_threads(0);
        config.backends = vec![Backend::Sequential];
        config.probes_per_backend = 0;
        config.reprobe_interval = 0;
        let pool = AdaptivePool::new(config);
        assert_eq!(pool.num_threads(), 1);
        assert_eq!(pool.backends(), &Backend::DEFAULT);
    }
}
