//! # parlo-exec — the shared worker substrate
//!
//! Every loop runtime in the workspace (the fine-grain half-barrier pool, the
//! OpenMP-like team, the Cilk-like pool and the work-stealing chunk pool) needs `P − 1`
//! worker threads bound to one master.  Before this crate existed each pool spawned its
//! own set, so a roster of seven runtimes plus an adaptive pool holding four backends
//! kept up to **8 × (P − 1)** parked-but-live OS threads, all compact-pinned to the
//! *same* cores — self-inflicted oversubscription that inflated every measured burden.
//!
//! An [`Executor`] owns the OS threads instead: at most `P − 1` pinned workers per
//! placement, created lazily and exactly once.  Runtimes *lease* the workers:
//!
//! * a pool [`register`](Executor::register)s itself at construction, providing a
//!   **worker body** (its scheduling loop, resumable at a stored epoch) and a
//!   **detach hook** (drives the pool's synchronization through one no-op cycle so
//!   every worker exits the body and parks back in the substrate);
//! * the first loop after construction — or after another pool ran — *activates* the
//!   lease: the substrate detaches the previous holder, waits for its workers to park,
//!   and runs the new pool's body on every worker it needs (the **attach rendezvous**:
//!   the activation does not complete until every participating worker is in the body,
//!   so no worker can lag an activation and miss barrier epochs);
//! * while a pool holds the lease, its loops run exactly as they always did — the
//!   substrate adds **zero** work to the per-loop hot path (one relaxed atomic load to
//!   confirm the lease is still held);
//! * dropping a pool releases its lease; dropping the last handle to an executor joins
//!   the workers, so nothing leaks.
//!
//! The invariant this buys: **the total number of live OS worker threads is bounded by
//! the executor capacity (`P − 1`), no matter how many runtimes are alive** — testable
//! through [`ExecStats`] and [`process_thread_count`].
//!
//! ## Partitioned leases: the multi-driver contract
//!
//! An [exclusive lease](Executor::register) owns *all* the workers while active, so
//! clients taking turns on one executor must be driven from a single master thread at
//! a time.  A [partition lease](Executor::register_partition) instead names an
//! explicit subset of substrate worker ids, and **any number of partition leases over
//! pairwise-disjoint subsets may be active simultaneously, each driven by its own
//! thread** — this is how `parlo-serve` space-shares one substrate across concurrent
//! tenants without ever exceeding the `P − 1` census.  The contract:
//!
//! * a partition names sorted, unique substrate worker ids (`1..`); its client has
//!   `participants == ids.len() + 1` and its body receives **pool-local** participant
//!   ids (`1..=ids.len()`, position in the partition plus one), so a pool built on a
//!   sub-lease is oblivious to which substrate workers serve it;
//! * activating a partition detaches an exclusive holder (which owns every worker,
//!   including the partition's) but **panics deterministically** if it overlaps
//!   another *active partition* — overlap means two drivers claimed the same worker,
//!   which is an allocation bug, never a timing accident;
//! * activating an exclusive lease detaches every active client, partitions included;
//! * all activation, rendezvous and detach accounting is per client, under one lock,
//!   so concurrent drivers can attach and detach disjoint partitions freely.
//!
//! Pools assert their own half of the contract with a per-pool in-flight flag: loop
//! entry and lease revocation both `swap` the flag, so whichever of a racing second
//! driver or a mid-loop revocation comes second panics deterministically instead of
//! corrupting the hand-off.

#![warn(missing_docs)]

use parlo_affinity::{PinPolicy, PlacementConfig, Topology};
use parlo_sync::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// What a runtime hands the substrate when registering: how many participants it has,
/// how a leased worker serves it, and how to make those workers leave again.
pub struct ClientHooks {
    /// Diagnostic label shown in [`ExecStats::active`].
    pub name: String,
    /// Participants of the runtime, master included.  For an exclusive lease, workers
    /// `1..participants` take part while the client is active and the body receives
    /// the substrate worker id unchanged (substrate worker `i` *is* pool participant
    /// `i`).  For a partition lease, `participants` must equal the partition size plus
    /// one and the body receives pool-local ids.
    pub participants: usize,
    /// The worker's scheduling loop: called with the participant id, runs until the
    /// client detaches it (and must return promptly once the detach hook has fired).
    /// Must be resumable: a body that is re-entered after a detach continues from the
    /// state it saved on the way out.
    pub body: Arc<dyn Fn(usize) + Send + Sync>,
    /// Drives the client's synchronization through one no-op cycle such that every
    /// attached worker exits the body.  Called from the substrate while switching
    /// leases (on whichever thread triggered the switch; may block on the client's
    /// own barrier).
    pub detach: Arc<dyn Fn() + Send + Sync>,
}

/// One activation of a client on (a subset of) the workers.
struct Activation {
    client: u64,
    name: String,
    /// Substrate worker ids serving this activation, sorted ascending.  For an
    /// exclusive activation this is `1..=needed`, so position-plus-one equals the
    /// substrate id and the body sees the id unchanged.
    workers: Arc<Vec<usize>>,
    /// Whether this activation owns the whole substrate (detached by any activation)
    /// or only its listed workers (coexists with disjoint partitions).
    exclusive: bool,
    /// The lease's hot-path flag; true from rendezvous completion to detach start.
    attached: Arc<AtomicBool>,
    body: Arc<dyn Fn(usize) + Send + Sync>,
    detach: Arc<dyn Fn() + Send + Sync>,
}

impl Activation {
    /// The pool-local participant id substrate worker `id` serves this activation
    /// with, or `None` when the activation does not cover the worker.
    fn local_id(&self, id: usize) -> Option<usize> {
        self.workers.iter().position(|&w| w == id).map(|p| p + 1)
    }
}

/// State shared with the worker threads.
struct ExecState {
    /// Bumped once per activation; workers watch it to pick up new bodies.
    generation: u64,
    /// The clients currently holding workers (at most one exclusive, or any number of
    /// pairwise-disjoint partitions).
    actives: Vec<Activation>,
    /// Per-client count of workers currently inside that client's body.  Entries
    /// outlive the activation (a detach waits on the count draining to zero after the
    /// activation is removed), and are dropped when the count reaches zero.
    in_body: Vec<(u64, usize)>,
    /// Workers spawned so far (ids `1..=spawned`).
    spawned: usize,
    /// Live leases.
    registered: usize,
    /// Id source for leases (0 is reserved for "no client").
    next_client: u64,
    /// Set once, when the last executor handle drops.
    shutdown: bool,
}

impl ExecState {
    fn in_body_of(&self, client: u64) -> usize {
        self.in_body
            .iter()
            .find(|(c, _)| *c == client)
            .map_or(0, |(_, n)| *n)
    }

    fn enter_body(&mut self, client: u64) {
        match self.in_body.iter_mut().find(|(c, _)| *c == client) {
            Some((_, n)) => *n += 1,
            None => self.in_body.push((client, 1)),
        }
    }

    fn exit_body(&mut self, client: u64) {
        if let Some(pos) = self.in_body.iter().position(|(c, _)| *c == client) {
            self.in_body[pos].1 -= 1;
            if self.in_body[pos].1 == 0 {
                self.in_body.swap_remove(pos);
            }
        }
    }
}

/// The part of the executor the worker threads reference.  Workers hold only this
/// (not the [`Executor`] itself), so dropping the last executor handle can join them.
struct WorkerShared {
    topology: Topology,
    pin: PinPolicy,
    state: Mutex<ExecState>,
    /// Workers wait here for a new generation.
    worker_cv: Condvar,
    /// Activating/detaching threads wait here for per-client `in_body` counts to
    /// reach a rendezvous target (all entered) or drain (all parked).
    master_cv: Condvar,
}

/// A snapshot of a substrate's thread accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// Live OS worker threads owned by the substrate (grows on demand, never beyond
    /// the largest worker id any client asked for).
    pub workers: usize,
    /// Live leases (registered clients).
    pub leases: usize,
    /// Labels of the clients currently holding workers — at most one entry for an
    /// exclusive holder, one entry per active partition otherwise.
    pub active: Vec<String>,
    /// Lease activations performed so far.
    pub switches: u64,
    /// `pin_map[i]` is the core worker `i + 1` was pinned to at spawn (`None` when the
    /// pin policy placed it nowhere).
    pub pin_map: Vec<Option<usize>>,
}

/// The shared worker substrate: owns up to `P − 1` pinned OS threads and leases them
/// to loop runtimes, exclusively or in disjoint partitions.  See the crate docs for
/// the protocol.
pub struct Executor {
    shared: Arc<WorkerShared>,
    switches: AtomicU64,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock_state();
        f.debug_struct("Executor")
            .field("workers", &st.spawned)
            .field("leases", &st.registered)
            .field(
                "active",
                &st.actives
                    .iter()
                    .map(|a| a.name.as_str())
                    .collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Executor {
    /// Creates a substrate for the given machine shape and pin policy.  No threads are
    /// spawned until a client's first activation asks for them.
    pub fn new(topology: &Topology, pin: PinPolicy) -> Arc<Executor> {
        Arc::new(Executor {
            shared: Arc::new(WorkerShared {
                topology: topology.clone(),
                pin,
                state: Mutex::new(ExecState {
                    generation: 0,
                    actives: Vec::new(),
                    in_body: Vec::new(),
                    spawned: 0,
                    registered: 0,
                    next_client: 0,
                    shutdown: false,
                }),
                worker_cv: Condvar::new(),
                master_cv: Condvar::new(),
            }),
            switches: AtomicU64::new(0),
            handles: Mutex::new(Vec::new()),
        })
    }

    /// Creates a substrate for a shared [`PlacementConfig`] (resolves its topology
    /// source and takes its pin policy).
    pub fn for_placement(placement: &PlacementConfig) -> Arc<Executor> {
        Self::new(&placement.topology(), placement.pin)
    }

    /// The machine shape the workers are pinned to.
    pub fn topology(&self) -> &Topology {
        &self.shared.topology
    }

    /// The pin policy workers are placed with at spawn.
    pub fn pin(&self) -> PinPolicy {
        self.shared.pin
    }

    /// The substrate's natural worker capacity, `P − 1` for a `P`-core placement:
    /// one core is the (or *a*) master's, the rest can each host one worker.  A
    /// partition allocator (such as `parlo-serve`) must not hand out ids beyond it.
    pub fn capacity(&self) -> usize {
        self.shared.topology.num_cores().saturating_sub(1)
    }

    /// Registers an exclusive client and returns its lease.  Until the lease is
    /// [`activate`](Lease::activate)d, the registration costs nothing.
    pub fn register(self: &Arc<Self>, hooks: ClientHooks) -> Lease {
        self.register_lease(hooks, None)
    }

    /// Registers a client over an explicit partition of substrate worker ids and
    /// returns its lease.  `workers` must be sorted ascending, unique, with every id
    /// at least 1, and `hooks.participants` must equal `workers.len() + 1` (the
    /// driving master plus one participant per listed worker) — violations panic, as
    /// they are allocation bugs, not runtime conditions.  Disjoint partitions may be
    /// active at the same time, each driven by its own thread; see the crate docs for
    /// the full contract.
    pub fn register_partition(self: &Arc<Self>, hooks: ClientHooks, workers: Vec<usize>) -> Lease {
        assert!(
            workers.windows(2).all(|w| w[0] < w[1]),
            "partition worker ids must be sorted and unique: {workers:?}"
        );
        assert!(
            workers.iter().all(|&w| w >= 1),
            "partition worker ids start at 1 (0 is the client's own master): {workers:?}"
        );
        assert_eq!(
            hooks.participants,
            workers.len() + 1,
            "a partition client has one participant per leased worker plus its master"
        );
        self.register_lease(hooks, Some(Arc::new(workers)))
    }

    fn register_lease(
        self: &Arc<Self>,
        hooks: ClientHooks,
        partition: Option<Arc<Vec<usize>>>,
    ) -> Lease {
        let mut st = self.lock_state();
        st.registered += 1;
        st.next_client += 1;
        let id = st.next_client;
        drop(st);
        Lease {
            exec: Arc::clone(self),
            id,
            hooks,
            partition,
            attached: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A snapshot of the substrate's thread accounting.
    pub fn stats(&self) -> ExecStats {
        let st = self.lock_state();
        ExecStats {
            workers: st.spawned,
            leases: st.registered,
            active: st.actives.iter().map(|a| a.name.clone()).collect(),
            switches: self.switches.load(Ordering::Relaxed),
            pin_map: (1..=st.spawned)
                .map(|id| self.shared.topology.core_for_worker(id, self.shared.pin))
                .collect(),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    fn wait_master<'a>(&self, st: MutexGuard<'a, ExecState>) -> MutexGuard<'a, ExecState> {
        self.shared
            .master_cv
            .wait(st)
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Detaches `client` (if active) and waits until every one of its workers has
    /// parked back in the substrate.  Must be called with the state lock held;
    /// returns it.
    fn detach_client_locked<'a>(
        &self,
        mut st: MutexGuard<'a, ExecState>,
        client: u64,
    ) -> MutexGuard<'a, ExecState> {
        // A concurrent activation of this client may still be mid-rendezvous; let it
        // complete first, or its late workers would scan an empty `actives` and the
        // detach hook below would wait for arrivals that never come.
        loop {
            let Some(a) = st.actives.iter().find(|a| a.client == client) else {
                return st;
            };
            if st.in_body_of(client) >= a.workers.len() {
                break;
            }
            st = self.wait_master(st);
        }
        parlo_trace::span_begin(parlo_trace::Phase::LeaseDetach, client, 0);
        let pos = st
            .actives
            .iter()
            .position(|a| a.client == client)
            .expect("activation present: checked above under the same lock");
        let active = st.actives.remove(pos);
        active.attached.store(false, Ordering::Release);
        // The hook drives the departing client's own synchronization; workers in
        // the body reach their exit without needing the state lock.  Workers that
        // chose WaitMode::Park and blocked between the client's loops are woken by
        // the hook's own release stores; the explicit wake below also covers a
        // worker that committed to park right as the lease flipped to detached.
        (active.detach)();
        parlo_barrier::wake_parked();
        while st.in_body_of(client) > 0 {
            st = self.wait_master(st);
        }
        parlo_trace::span_end(parlo_trace::Phase::LeaseDetach);
        st
    }

    /// Spawns substrate workers until ids `1..=upto` exist.
    fn spawn_to(&self, st: &mut MutexGuard<'_, ExecState>, upto: usize) {
        while st.spawned < upto {
            let id = st.spawned + 1;
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("parlo-exec-{id}"))
                .spawn(move || worker_loop(shared, id))
                .expect("failed to spawn substrate worker thread");
            self.handles
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .push(handle);
            st.spawned += 1;
        }
    }

    /// Hands workers to `lease`'s client: detaches whatever holds them (everything
    /// for an exclusive lease, only an exclusive holder for a partition), grows
    /// capacity if needed, publishes the new body and waits for the attach
    /// rendezvous.
    fn switch_to(&self, lease: &Lease) {
        let mut st = self.lock_state();
        if let Some(a) = st.actives.iter().find(|a| a.client == lease.id) {
            // Already active (possibly attached by another thread of the same
            // tenant): return only once the rendezvous is complete, so the caller
            // can rely on every participant being inside the body.
            let need = a.workers.len();
            while st.in_body_of(lease.id) < need {
                st = self.wait_master(st);
            }
            return;
        }
        parlo_trace::span_begin(
            parlo_trace::Phase::LeaseAttach,
            lease.id,
            lease.hooks.participants as u64,
        );
        let (workers, exclusive) = match &lease.partition {
            None => {
                // Exclusive: every active client must leave, partitions included.
                while let Some(a) = st.actives.first() {
                    let client = a.client;
                    st = self.detach_client_locked(st, client);
                }
                let needed = lease.hooks.participants.saturating_sub(1);
                (Arc::new((1..=needed).collect::<Vec<_>>()), true)
            }
            Some(part) => {
                // A partition evicts an exclusive holder (it owns every worker,
                // including ours)...
                while let Some(a) = st.actives.iter().find(|a| a.exclusive) {
                    let client = a.client;
                    st = self.detach_client_locked(st, client);
                }
                // ...but overlapping another active partition means two drivers
                // claimed the same worker: an allocation bug, so panic — loudly and
                // deterministically, never racily.
                for a in &st.actives {
                    if let Some(shared_id) = part.iter().find(|id| a.workers.contains(id)) {
                        panic!(
                            "partition lease '{}' overlaps active partition '{}' on \
                             substrate worker {shared_id}: partitions of one executor \
                             must be pairwise disjoint",
                            lease.hooks.name, a.name
                        );
                    }
                }
                (Arc::clone(part), false)
            }
        };
        self.spawn_to(&mut st, workers.last().copied().unwrap_or(0));
        st.generation += 1;
        st.actives.push(Activation {
            client: lease.id,
            name: lease.hooks.name.clone(),
            workers: Arc::clone(&workers),
            exclusive,
            attached: Arc::clone(&lease.attached),
            body: lease.hooks.body.clone(),
            detach: lease.hooks.detach.clone(),
        });
        self.shared.worker_cv.notify_all();
        // Attach rendezvous: a worker that missed an activation would miss the
        // client's barrier epochs and desynchronize it, so the switch completes only
        // when every participating worker is inside the body.
        while st.in_body_of(lease.id) < workers.len() {
            st = self.wait_master(st);
        }
        self.switches.fetch_add(1, Ordering::Relaxed);
        lease.attached.store(true, Ordering::Release);
        if !exclusive {
            parlo_trace::instant(
                parlo_trace::Phase::PartitionActivate,
                lease.id,
                workers.len() as u64,
            );
        }
        parlo_trace::span_end(parlo_trace::Phase::LeaseAttach);
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut st = self.lock_state();
            // Every lease holds an Arc to the executor, so by the time the last
            // handle drops, all clients are deregistered and detached.
            debug_assert!(
                st.actives.is_empty(),
                "executor dropped with an active lease"
            );
            st.shutdown = true;
            self.shared.worker_cv.notify_all();
        }
        let handles = std::mem::take(
            &mut *self
                .handles
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        );
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<WorkerShared>, id: usize) {
    match shared.topology.core_for_worker(id, shared.pin) {
        Some(core) => {
            let _ = parlo_affinity::pin_to_core(core);
            parlo_trace::set_thread_label(&format!("worker-{id} (core {core})"));
        }
        None => parlo_trace::set_thread_label(&format!("worker-{id} (unpinned)")),
    }
    let mut seen: u64 = 0;
    loop {
        // Park until a new generation covers this worker.  Entering a body and
        // bumping the per-client count happen under the same lock section as reading
        // the generation, so the switch path's rendezvous counts are never stale.
        let (client, local, body) = {
            let mut st = shared
                .state
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    // Scan every active client (not just the newest): with disjoint
                    // partitions attaching concurrently, the activation that covers
                    // this worker is not necessarily the one that bumped the
                    // generation last.
                    let found = st.actives.iter().find_map(|a| {
                        a.local_id(id)
                            .map(|local| (a.client, local, a.body.clone()))
                    });
                    if let Some((client, local, body)) = found {
                        st.enter_body(client);
                        shared.master_cv.notify_all();
                        break (client, local, body);
                    }
                    continue;
                }
                st = shared
                    .worker_cv
                    .wait(st)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        };
        // A panic inside a scheduling-loop body leaves the client's barrier protocol
        // undrainable (its master is already blocked in a join that the dead worker
        // will never arrive at) and would leak the body count, turning every *other*
        // pool's next lease switch into a silent distributed hang.  Abort instead:
        // an immediate, attributable crash at the panic site.
        let abort_guard = AbortOnUnwind(id);
        body(local);
        std::mem::forget(abort_guard);
        let mut st = shared
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        st.exit_body(client);
        shared.master_cv.notify_all();
    }
}

/// Aborts the process if dropped during an unwind (see the call site in
/// [`worker_loop`]); forgotten on the normal path.
struct AbortOnUnwind(usize);

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        eprintln!(
            "parlo-exec worker {} panicked inside a client's scheduling loop; the \
             client's synchronization cannot be drained — aborting",
            self.0
        );
        std::process::abort();
    }
}

/// A client's handle on the substrate.  Dropping it detaches the client's workers (if
/// attached) and deregisters the client.
pub struct Lease {
    exec: Arc<Executor>,
    id: u64,
    hooks: ClientHooks,
    /// The substrate worker ids this lease covers (`None` = exclusive: all of them).
    partition: Option<Arc<Vec<usize>>>,
    /// The hot-path flag: true while this client holds its workers.
    attached: Arc<AtomicBool>,
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease")
            .field("client", &self.hooks.name)
            .field("participants", &self.hooks.participants)
            .field("partition", &self.partition)
            .field("active", &self.is_active())
            .finish()
    }
}

impl Lease {
    /// Whether this client currently holds its workers.  One atomic load — this is
    /// the per-loop hot-path check.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.attached.load(Ordering::Acquire)
    }

    /// The substrate worker ids this lease covers, or `None` for an exclusive lease.
    pub fn partition(&self) -> Option<&[usize]> {
        self.partition.as_deref().map(|v| v.as_slice())
    }

    /// Makes this client a holder of workers, detaching whatever holds them first
    /// (everything for an exclusive lease, only an exclusive holder for a partition
    /// lease).  A no-op when the client is already active; clients with at most one
    /// participant never need workers and may skip the call entirely.
    ///
    /// The caller (the pool) must reset its own detach flag *before* activating, so
    /// workers entering the body see a live client — prefer
    /// [`Lease::ensure_active`], which enforces that ordering.
    pub fn activate(&self) {
        if self.is_active() {
            return;
        }
        self.exec.switch_to(self);
    }

    /// The standard client fast path: returns immediately (one atomic load) when the
    /// client already holds the workers; otherwise runs `prepare` — where the client
    /// resets its detach flag — strictly before the hand-off begins, then activates.
    /// Having the reset-before-activate ordering live here keeps every pool's
    /// `ensure_workers` from re-deriving it.
    #[inline]
    pub fn ensure_active(&self, prepare: impl FnOnce()) {
        if self.is_active() {
            return;
        }
        prepare();
        self.exec.switch_to(self);
    }

    /// The substrate this lease draws workers from.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.exec
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let mut st = self.exec.lock_state();
        st.registered -= 1;
        if st.actives.iter().any(|a| a.client == self.id) {
            let _st = self.exec.detach_client_locked(st, self.id);
        }
    }
}

/// The number of OS threads of the current process (`/proc/self/task`), or `None`
/// where that interface does not exist.  The substrate tests use it to assert the
/// whole-process census, not just the substrate's own accounting.
pub fn process_thread_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/task")
        .ok()
        .map(|dir| dir.flatten().count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parlo_sync::{AtomicBool, AtomicUsize};

    /// A minimal client: its "scheduling loop" parks on a flag and counts entries.
    struct FlagClient {
        detach: Arc<AtomicBool>,
        entered: Arc<AtomicUsize>,
        ids: Arc<Mutex<Vec<usize>>>,
    }

    impl FlagClient {
        fn hooks(name: &str, participants: usize) -> (ClientHooks, FlagClient) {
            let detach = Arc::new(AtomicBool::new(false));
            let entered = Arc::new(AtomicUsize::new(0));
            let ids = Arc::new(Mutex::new(Vec::new()));
            let client = FlagClient {
                detach: detach.clone(),
                entered: entered.clone(),
                ids: ids.clone(),
            };
            let body_detach = detach.clone();
            let hooks = ClientHooks {
                name: name.to_string(),
                participants,
                body: Arc::new(move |id| {
                    entered.fetch_add(1, Ordering::Relaxed);
                    ids.lock().unwrap().push(id);
                    while !body_detach.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }),
                detach: Arc::new(move || detach.store(true, Ordering::Release)),
            };
            (hooks, client)
        }

        fn reset(&self) {
            self.detach.store(false, Ordering::Release);
            self.ids.lock().unwrap().clear();
        }
    }

    #[test]
    fn lazy_spawn_and_capacity_growth() {
        let topo = Topology::flat(8).unwrap();
        let exec = Executor::new(&topo, PinPolicy::None);
        assert_eq!(
            exec.stats().workers,
            0,
            "no threads before first activation"
        );
        assert_eq!(exec.capacity(), 7);

        let (hooks_a, a) = FlagClient::hooks("a", 3);
        let lease_a = exec.register(hooks_a);
        a.reset();
        lease_a.activate();
        assert_eq!(exec.stats().workers, 2);
        assert!(lease_a.is_active());
        assert_eq!(exec.stats().active, vec!["a".to_string()]);

        // A larger client grows the capacity; the first client's workers are reused.
        let (hooks_b, b) = FlagClient::hooks("b", 5);
        let lease_b = exec.register(hooks_b);
        b.reset();
        lease_b.activate();
        assert!(!lease_a.is_active());
        assert!(lease_b.is_active());
        let stats = exec.stats();
        assert_eq!(stats.workers, 4, "grown to the largest client, not summed");
        assert_eq!(stats.leases, 2);
        assert_eq!(stats.switches, 2);
        assert_eq!(stats.pin_map.len(), 4);
    }

    #[test]
    fn attach_rendezvous_enters_every_participant() {
        let topo = Topology::flat(4).unwrap();
        let exec = Executor::new(&topo, PinPolicy::None);
        let (hooks, client) = FlagClient::hooks("rendezvous", 4);
        let lease = exec.register(hooks);
        for round in 1..=3u64 {
            client.reset();
            lease.activate();
            // activate() returning means all 3 workers are inside the body (the
            // body-side counter may trail the rendezvous by an instant: the worker
            // bumps the count under the lock just before running the closure).
            let expected = 3 * round as usize;
            while client.entered.load(Ordering::Relaxed) < expected {
                std::thread::yield_now();
            }
            assert_eq!(client.entered.load(Ordering::Relaxed), expected);
            // Force a detach by activating another client.
            let (other_hooks, other) = FlagClient::hooks("other", 2);
            let other_lease = exec.register(other_hooks);
            other.reset();
            other_lease.activate();
            assert!(!lease.is_active());
        }
    }

    #[test]
    fn dropping_the_last_handle_joins_the_workers() {
        let before = process_thread_count();
        {
            let topo = Topology::flat(4).unwrap();
            let exec = Executor::new(&topo, PinPolicy::None);
            let (hooks, client) = FlagClient::hooks("c", 4);
            let lease = exec.register(hooks);
            client.reset();
            lease.activate();
            assert_eq!(exec.stats().workers, 3);
            drop(lease);
            assert_eq!(exec.stats().leases, 0);
            assert!(exec.stats().active.is_empty(), "lease drop detaches");
        }
        // Executor::drop joins synchronously, so the census is back immediately.
        if let (Some(b), Some(a)) = (before, process_thread_count()) {
            assert_eq!(a, b, "no leaked substrate threads");
        }
    }

    #[test]
    fn single_participant_clients_never_need_workers() {
        let topo = Topology::flat(2).unwrap();
        let exec = Executor::new(&topo, PinPolicy::None);
        let (hooks, _client) = FlagClient::hooks("solo", 1);
        let lease = exec.register(hooks);
        // A 1-participant client may activate, but needs no workers.
        lease.activate();
        assert_eq!(exec.stats().workers, 0);
    }

    #[test]
    fn disjoint_partitions_are_simultaneously_active() {
        let topo = Topology::flat(8).unwrap();
        let exec = Executor::new(&topo, PinPolicy::None);
        let (hooks_a, a) = FlagClient::hooks("part-a", 3);
        let lease_a = exec.register_partition(hooks_a, vec![1, 2]);
        let (hooks_b, b) = FlagClient::hooks("part-b", 3);
        let lease_b = exec.register_partition(hooks_b, vec![3, 4]);
        a.reset();
        b.reset();
        lease_a.activate();
        lease_b.activate();
        assert!(
            lease_a.is_active() && lease_b.is_active(),
            "disjoint partitions coexist"
        );
        let stats = exec.stats();
        assert_eq!(stats.workers, 4);
        assert_eq!(
            stats.active,
            vec!["part-a".to_string(), "part-b".to_string()]
        );
        // Partition bodies receive pool-local participant ids, not substrate ids.
        while b.entered.load(Ordering::Relaxed) < 2 {
            std::thread::yield_now();
        }
        let mut ids = b.ids.lock().unwrap().clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2], "substrate workers 3,4 serve as locals 1,2");
    }

    #[test]
    fn overlapping_partitions_panic_deterministically() {
        let topo = Topology::flat(8).unwrap();
        let exec = Executor::new(&topo, PinPolicy::None);
        let (hooks_a, a) = FlagClient::hooks("part-a", 3);
        let lease_a = exec.register_partition(hooks_a, vec![1, 2]);
        a.reset();
        lease_a.activate();
        let (hooks_b, _b) = FlagClient::hooks("part-b", 2);
        let lease_b = exec.register_partition(hooks_b, vec![2]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            lease_b.activate();
        }))
        .expect_err("activating an overlapping partition must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("overlaps"), "panic message: {msg}");
        // The first partition is untouched by the failed activation.
        assert!(lease_a.is_active());
        drop(lease_b);
        drop(lease_a);
    }

    #[test]
    fn exclusive_activation_detaches_partitions_and_vice_versa() {
        let topo = Topology::flat(8).unwrap();
        let exec = Executor::new(&topo, PinPolicy::None);
        let (hooks_a, a) = FlagClient::hooks("part-a", 2);
        let lease_a = exec.register_partition(hooks_a, vec![1]);
        let (hooks_x, x) = FlagClient::hooks("excl", 3);
        let lease_x = exec.register(hooks_x);
        a.reset();
        lease_a.activate();
        x.reset();
        lease_x.activate();
        assert!(!lease_a.is_active(), "exclusive evicts partitions");
        assert!(lease_x.is_active());
        a.reset();
        lease_a.activate();
        assert!(
            !lease_x.is_active(),
            "a partition evicts an exclusive holder"
        );
        assert!(lease_a.is_active());
    }

    #[test]
    fn partitions_activated_from_concurrent_threads() {
        let topo = Topology::flat(8).unwrap();
        let exec = Executor::new(&topo, PinPolicy::None);
        let mut joins = Vec::new();
        for t in 0..3usize {
            let exec = Arc::clone(&exec);
            joins.push(std::thread::spawn(move || {
                let (hooks, c) = FlagClient::hooks(&format!("t{t}"), 3);
                let ids = vec![2 * t + 1, 2 * t + 2];
                let lease = exec.register_partition(hooks, ids);
                c.reset();
                for _ in 0..10 {
                    lease.activate();
                    assert!(lease.is_active());
                    std::thread::yield_now();
                }
                drop(lease);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let stats = exec.stats();
        assert!(stats.active.is_empty());
        assert_eq!(stats.leases, 0);
        assert!(stats.workers <= 6);
    }

    #[test]
    fn register_partition_validates_its_shape() {
        let topo = Topology::flat(4).unwrap();
        let exec = Executor::new(&topo, PinPolicy::None);
        for workers in [vec![2, 1], vec![1, 1], vec![0]] {
            let exec = Arc::clone(&exec);
            let workers_clone = workers.clone();
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                let (hooks, _c) = FlagClient::hooks("bad", workers_clone.len() + 1);
                exec.register_partition(hooks, workers_clone)
            }));
            assert!(res.is_err(), "malformed partition {workers:?} must panic");
        }
    }
}
