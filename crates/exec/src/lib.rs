//! # parlo-exec — the shared worker substrate
//!
//! Every loop runtime in the workspace (the fine-grain half-barrier pool, the
//! OpenMP-like team, the Cilk-like pool and the work-stealing chunk pool) needs `P − 1`
//! worker threads bound to one master.  Before this crate existed each pool spawned its
//! own set, so a roster of seven runtimes plus an adaptive pool holding four backends
//! kept up to **8 × (P − 1)** parked-but-live OS threads, all compact-pinned to the
//! *same* cores — self-inflicted oversubscription that inflated every measured burden.
//!
//! An [`Executor`] owns the OS threads instead: at most `P − 1` pinned workers per
//! placement, created lazily and exactly once.  Runtimes *lease* the workers:
//!
//! * a pool [`register`](Executor::register)s itself at construction, providing a
//!   **worker body** (its scheduling loop, resumable at a stored epoch) and a
//!   **detach hook** (drives the pool's synchronization through one no-op cycle so
//!   every worker exits the body and parks back in the substrate);
//! * the first loop after construction — or after another pool ran — *activates* the
//!   lease: the substrate detaches the previous holder, waits for its workers to park,
//!   and runs the new pool's body on every worker it needs (the **attach rendezvous**:
//!   the activation does not complete until every participating worker has entered the
//!   body, so no worker can lag an activation and miss barrier epochs);
//! * while a pool holds the lease, its loops run exactly as they always did — the
//!   substrate adds **zero** work to the per-loop hot path (one relaxed atomic load to
//!   confirm the lease is still held);
//! * dropping a pool releases its lease; dropping the last handle to an executor joins
//!   the workers, so nothing leaks.
//!
//! The invariant this buys: **the total number of live OS worker threads is bounded by
//! the executor capacity (`P − 1`), no matter how many runtimes are alive** — testable
//! through [`ExecStats`] and [`process_thread_count`].
//!
//! ## The single-driver contract
//!
//! Lease hand-off assumes the departing pool is quiescent: all clients of one executor
//! must be driven from a single master thread at a time (the roster, the adaptive pool
//! and every bench binary satisfy this trivially — they interleave loops from one
//! thread).  Pools assert the contract at detach time with a per-pool in-flight flag:
//! when the revocation happens on the driving thread (the only correct place), the
//! check is reliable and a mid-loop revocation panics instead of corrupting the
//! hand-off.  The check is **best-effort** against a genuinely racing second driver —
//! the flag is a relaxed cross-thread read there, so a concurrent violation may
//! escape it; the contract itself, not the assert, is the safety boundary.

#![warn(missing_docs)]

use parlo_affinity::{PinPolicy, PlacementConfig, Topology};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// What a runtime hands the substrate when registering: how many participants it has,
/// how a leased worker serves it, and how to make those workers leave again.
pub struct ClientHooks {
    /// Diagnostic label shown in [`ExecStats::active`].
    pub name: String,
    /// Participants of the runtime, master included.  Workers `1..participants` take
    /// part while the client is active; an executor worker passes its substrate id to
    /// the body unchanged, so substrate worker `i` *is* pool participant `i`.
    pub participants: usize,
    /// The worker's scheduling loop: called with the worker id, runs until the client
    /// detaches it (and must return promptly once the detach hook has fired).  Must be
    /// resumable: a body that is re-entered after a detach continues from the state it
    /// saved on the way out.
    pub body: Arc<dyn Fn(usize) + Send + Sync>,
    /// Drives the client's synchronization through one no-op cycle such that every
    /// attached worker exits the body.  Called from the substrate while switching
    /// leases (always on the thread that drives the runtimes; may block on the
    /// client's own barrier).
    pub detach: Arc<dyn Fn() + Send + Sync>,
}

/// One activation of a client on the workers.
struct Activation {
    client: u64,
    name: String,
    participants: usize,
    body: Arc<dyn Fn(usize) + Send + Sync>,
    detach: Arc<dyn Fn() + Send + Sync>,
}

/// State shared with the worker threads.
struct ExecState {
    /// Bumped once per activation; workers watch it to pick up new bodies.
    generation: u64,
    /// The client currently holding the workers, if any.
    active: Option<Activation>,
    /// Workers currently inside a client body.
    in_body: usize,
    /// Workers spawned so far (ids `1..=spawned`).
    spawned: usize,
    /// Live leases.
    registered: usize,
    /// Id source for leases (0 is reserved for "no client").
    next_client: u64,
    /// Set once, when the last executor handle drops.
    shutdown: bool,
}

/// The part of the executor the worker threads reference.  Workers hold only this
/// (not the [`Executor`] itself), so dropping the last executor handle can join them.
struct WorkerShared {
    topology: Topology,
    pin: PinPolicy,
    state: Mutex<ExecState>,
    /// Workers wait here for a new generation.
    worker_cv: Condvar,
    /// The driving thread waits here for `in_body` to reach a rendezvous target.
    master_cv: Condvar,
}

/// A snapshot of a substrate's thread accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecStats {
    /// Live OS worker threads owned by the substrate (grows on demand, never beyond
    /// the largest `participants − 1` any client asked for).
    pub workers: usize,
    /// Live leases (registered clients).
    pub leases: usize,
    /// Label of the client currently holding the workers, if any.
    pub active: Option<String>,
    /// Lease activations performed so far.
    pub switches: u64,
    /// `pin_map[i]` is the core worker `i + 1` was pinned to at spawn (`None` when the
    /// pin policy placed it nowhere).
    pub pin_map: Vec<Option<usize>>,
}

/// The shared worker substrate: owns up to `P − 1` pinned OS threads and leases them
/// to loop runtimes.  See the crate docs for the protocol.
pub struct Executor {
    shared: Arc<WorkerShared>,
    /// Fast-path copy of the active client id (0 = none); lets
    /// [`Lease::is_active`] cost one atomic load on the per-loop hot path.
    active_client: AtomicU64,
    switches: AtomicU64,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock_state();
        f.debug_struct("Executor")
            .field("workers", &st.spawned)
            .field("leases", &st.registered)
            .field("active", &st.active.as_ref().map(|a| a.name.as_str()))
            .finish()
    }
}

impl Executor {
    /// Creates a substrate for the given machine shape and pin policy.  No threads are
    /// spawned until a client's first activation asks for them.
    pub fn new(topology: &Topology, pin: PinPolicy) -> Arc<Executor> {
        Arc::new(Executor {
            shared: Arc::new(WorkerShared {
                topology: topology.clone(),
                pin,
                state: Mutex::new(ExecState {
                    generation: 0,
                    active: None,
                    in_body: 0,
                    spawned: 0,
                    registered: 0,
                    next_client: 0,
                    shutdown: false,
                }),
                worker_cv: Condvar::new(),
                master_cv: Condvar::new(),
            }),
            active_client: AtomicU64::new(0),
            switches: AtomicU64::new(0),
            handles: Mutex::new(Vec::new()),
        })
    }

    /// Creates a substrate for a shared [`PlacementConfig`] (resolves its topology
    /// source and takes its pin policy).
    pub fn for_placement(placement: &PlacementConfig) -> Arc<Executor> {
        Self::new(&placement.topology(), placement.pin)
    }

    /// The machine shape the workers are pinned to.
    pub fn topology(&self) -> &Topology {
        &self.shared.topology
    }

    /// The pin policy workers are placed with at spawn.
    pub fn pin(&self) -> PinPolicy {
        self.shared.pin
    }

    /// Registers a client and returns its lease.  Until the lease is
    /// [`activate`](Lease::activate)d, the registration costs nothing.
    pub fn register(self: &Arc<Self>, hooks: ClientHooks) -> Lease {
        let mut st = self.lock_state();
        st.registered += 1;
        st.next_client += 1;
        let id = st.next_client;
        drop(st);
        Lease {
            exec: Arc::clone(self),
            id,
            hooks,
        }
    }

    /// A snapshot of the substrate's thread accounting.
    pub fn stats(&self) -> ExecStats {
        let st = self.lock_state();
        ExecStats {
            workers: st.spawned,
            leases: st.registered,
            active: st.active.as_ref().map(|a| a.name.clone()),
            switches: self.switches.load(Ordering::Relaxed),
            pin_map: (1..=st.spawned)
                .map(|id| self.shared.topology.core_for_worker(id, self.shared.pin))
                .collect(),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Detaches the active client (if any) and waits until every worker has parked
    /// back in the substrate.  Must be called with the state lock held; returns it.
    fn detach_active_locked<'a>(
        &self,
        mut st: MutexGuard<'a, ExecState>,
    ) -> MutexGuard<'a, ExecState> {
        if let Some(active) = st.active.take() {
            self.active_client.store(0, Ordering::Release);
            // The hook drives the departing client's own synchronization; workers in
            // the body reach their exit without needing the state lock.
            (active.detach)();
            while st.in_body > 0 {
                st = self
                    .shared
                    .master_cv
                    .wait(st)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        }
        st
    }

    /// Hands the workers to `client`: detaches the current holder, grows capacity if
    /// needed, publishes the new body and waits for the attach rendezvous.
    fn switch_to(&self, client: u64, hooks: &ClientHooks) {
        let mut st = self.lock_state();
        if st.active.as_ref().map(|a| a.client) == Some(client) {
            return;
        }
        st = self.detach_active_locked(st);
        let needed = hooks.participants.saturating_sub(1);
        while st.spawned < needed {
            let id = st.spawned + 1;
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("parlo-exec-{id}"))
                .spawn(move || worker_loop(shared, id))
                .expect("failed to spawn substrate worker thread");
            self.handles
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .push(handle);
            st.spawned += 1;
        }
        st.generation += 1;
        st.active = Some(Activation {
            client,
            name: hooks.name.clone(),
            participants: hooks.participants,
            body: hooks.body.clone(),
            detach: hooks.detach.clone(),
        });
        self.shared.worker_cv.notify_all();
        // Attach rendezvous: a worker that missed an activation would miss the
        // client's barrier epochs and desynchronize it, so the switch completes only
        // when every participating worker is inside the body.
        while st.in_body < needed {
            st = self
                .shared
                .master_cv
                .wait(st)
                .unwrap_or_else(|poison| poison.into_inner());
        }
        self.switches.fetch_add(1, Ordering::Relaxed);
        self.active_client.store(client, Ordering::Release);
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut st = self.lock_state();
            // Every lease holds an Arc to the executor, so by the time the last
            // handle drops, all clients are deregistered and detached.
            debug_assert!(st.active.is_none(), "executor dropped with an active lease");
            st.shutdown = true;
            self.shared.worker_cv.notify_all();
        }
        let handles = std::mem::take(
            &mut *self
                .handles
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        );
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<WorkerShared>, id: usize) {
    if let Some(core) = shared.topology.core_for_worker(id, shared.pin) {
        let _ = parlo_affinity::pin_to_core(core);
    }
    let mut seen: u64 = 0;
    loop {
        // Park until a new generation covers this worker.  Entering a body and
        // bumping `in_body` happen under the same lock section as reading the
        // generation, so the switch path's rendezvous counts are never stale.
        let body = {
            let mut st = shared
                .state
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    let body = match &st.active {
                        Some(a) if id < a.participants => Some(a.body.clone()),
                        // This generation does not need this worker: wait for the
                        // next one.
                        _ => None,
                    };
                    if let Some(body) = body {
                        st.in_body += 1;
                        shared.master_cv.notify_all();
                        break body;
                    }
                    continue;
                }
                st = shared
                    .worker_cv
                    .wait(st)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        };
        // A panic inside a scheduling-loop body leaves the client's barrier protocol
        // undrainable (its master is already blocked in a join that the dead worker
        // will never arrive at) and would leak the `in_body` count, turning every
        // *other* pool's next lease switch into a silent distributed hang.  Abort
        // instead: an immediate, attributable crash at the panic site.
        let abort_guard = AbortOnUnwind(id);
        body(id);
        std::mem::forget(abort_guard);
        let mut st = shared
            .state
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        st.in_body -= 1;
        if st.in_body == 0 {
            shared.master_cv.notify_all();
        }
    }
}

/// Aborts the process if dropped during an unwind (see the call site in
/// [`worker_loop`]); forgotten on the normal path.
struct AbortOnUnwind(usize);

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        eprintln!(
            "parlo-exec worker {} panicked inside a client's scheduling loop; the \
             client's synchronization cannot be drained — aborting",
            self.0
        );
        std::process::abort();
    }
}

/// A client's handle on the substrate.  Dropping it detaches the client's workers (if
/// attached) and deregisters the client.
pub struct Lease {
    exec: Arc<Executor>,
    id: u64,
    hooks: ClientHooks,
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease")
            .field("client", &self.hooks.name)
            .field("participants", &self.hooks.participants)
            .field("active", &self.is_active())
            .finish()
    }
}

impl Lease {
    /// Whether this client currently holds the workers.  One atomic load — this is
    /// the per-loop hot-path check.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.exec.active_client.load(Ordering::Acquire) == self.id
    }

    /// Makes this client the holder of the workers, detaching the previous holder
    /// first.  A no-op when the client is already active; clients with at most one
    /// participant never need workers and may skip the call entirely.
    ///
    /// The caller (the pool) must reset its own detach flag *before* activating, so
    /// workers entering the body see a live client — prefer
    /// [`Lease::ensure_active`], which enforces that ordering.
    pub fn activate(&self) {
        if self.is_active() {
            return;
        }
        self.exec.switch_to(self.id, &self.hooks);
    }

    /// The standard client fast path: returns immediately (one atomic load) when the
    /// client already holds the workers; otherwise runs `prepare` — where the client
    /// resets its detach flag — strictly before the hand-off begins, then activates.
    /// Having the reset-before-activate ordering live here keeps every pool's
    /// `ensure_workers` from re-deriving it.
    #[inline]
    pub fn ensure_active(&self, prepare: impl FnOnce()) {
        if self.is_active() {
            return;
        }
        prepare();
        self.exec.switch_to(self.id, &self.hooks);
    }

    /// The substrate this lease draws workers from.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.exec
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let mut st = self.exec.lock_state();
        st.registered -= 1;
        if st.active.as_ref().map(|a| a.client) == Some(self.id) {
            let _st = self.exec.detach_active_locked(st);
        }
    }
}

/// The number of OS threads of the current process (`/proc/self/task`), or `None`
/// where that interface does not exist.  The substrate tests use it to assert the
/// whole-process census, not just the substrate's own accounting.
pub fn process_thread_count() -> Option<usize> {
    std::fs::read_dir("/proc/self/task")
        .ok()
        .map(|dir| dir.flatten().count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize};

    /// A minimal client: its "scheduling loop" parks on a flag and counts entries.
    struct FlagClient {
        detach: Arc<AtomicBool>,
        entered: Arc<AtomicUsize>,
    }

    impl FlagClient {
        fn hooks(name: &str, participants: usize) -> (ClientHooks, FlagClient) {
            let detach = Arc::new(AtomicBool::new(false));
            let entered = Arc::new(AtomicUsize::new(0));
            let client = FlagClient {
                detach: detach.clone(),
                entered: entered.clone(),
            };
            let body_detach = detach.clone();
            let hooks = ClientHooks {
                name: name.to_string(),
                participants,
                body: Arc::new(move |_id| {
                    entered.fetch_add(1, Ordering::SeqCst);
                    while !body_detach.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }),
                detach: Arc::new(move || detach.store(true, Ordering::Release)),
            };
            (hooks, client)
        }

        fn reset(&self) {
            self.detach.store(false, Ordering::Release);
        }
    }

    #[test]
    fn lazy_spawn_and_capacity_growth() {
        let topo = Topology::flat(8).unwrap();
        let exec = Executor::new(&topo, PinPolicy::None);
        assert_eq!(
            exec.stats().workers,
            0,
            "no threads before first activation"
        );

        let (hooks_a, a) = FlagClient::hooks("a", 3);
        let lease_a = exec.register(hooks_a);
        a.reset();
        lease_a.activate();
        assert_eq!(exec.stats().workers, 2);
        assert!(lease_a.is_active());
        assert_eq!(exec.stats().active.as_deref(), Some("a"));

        // A larger client grows the capacity; the first client's workers are reused.
        let (hooks_b, b) = FlagClient::hooks("b", 5);
        let lease_b = exec.register(hooks_b);
        b.reset();
        lease_b.activate();
        assert!(!lease_a.is_active());
        assert!(lease_b.is_active());
        let stats = exec.stats();
        assert_eq!(stats.workers, 4, "grown to the largest client, not summed");
        assert_eq!(stats.leases, 2);
        assert_eq!(stats.switches, 2);
        assert_eq!(stats.pin_map.len(), 4);
    }

    #[test]
    fn attach_rendezvous_enters_every_participant() {
        let topo = Topology::flat(4).unwrap();
        let exec = Executor::new(&topo, PinPolicy::None);
        let (hooks, client) = FlagClient::hooks("rendezvous", 4);
        let lease = exec.register(hooks);
        for round in 1..=3u64 {
            client.reset();
            lease.activate();
            // activate() returning means all 3 workers are inside the body (the
            // body-side counter may trail the rendezvous by an instant: the worker
            // bumps `in_body` under the lock just before running the closure).
            let expected = 3 * round as usize;
            while client.entered.load(Ordering::SeqCst) < expected {
                std::thread::yield_now();
            }
            assert_eq!(client.entered.load(Ordering::SeqCst), expected);
            // Force a detach by activating another client.
            let (other_hooks, other) = FlagClient::hooks("other", 2);
            let other_lease = exec.register(other_hooks);
            other.reset();
            other_lease.activate();
            assert!(!lease.is_active());
        }
    }

    #[test]
    fn dropping_the_last_handle_joins_the_workers() {
        let before = process_thread_count();
        {
            let topo = Topology::flat(4).unwrap();
            let exec = Executor::new(&topo, PinPolicy::None);
            let (hooks, client) = FlagClient::hooks("c", 4);
            let lease = exec.register(hooks);
            client.reset();
            lease.activate();
            assert_eq!(exec.stats().workers, 3);
            drop(lease);
            assert_eq!(exec.stats().leases, 0);
            assert!(exec.stats().active.is_none(), "lease drop detaches");
        }
        // Executor::drop joins synchronously, so the census is back immediately.
        if let (Some(b), Some(a)) = (before, process_thread_count()) {
            assert_eq!(a, b, "no leaked substrate threads");
        }
    }

    #[test]
    fn single_participant_clients_never_need_workers() {
        let topo = Topology::flat(2).unwrap();
        let exec = Executor::new(&topo, PinPolicy::None);
        let (hooks, _client) = FlagClient::hooks("solo", 1);
        let lease = exec.register(hooks);
        // A 1-participant client may activate, but needs no workers.
        lease.activate();
        assert_eq!(exec.stats().workers, 0);
    }
}
