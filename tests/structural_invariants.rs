//! Unit tests for the paper's structural claims (Table 1 ablation), at a finer grain
//! than `tests/cross_runtime.rs`: every loop entry point of every runtime is checked
//! for its exact per-loop synchronization cost, and every reduction flavor for its
//! exact combine count, across thread counts and repetition counts.
//!
//! The claims under test (§2 and Table 1 of the paper):
//!
//! * a fine-grain loop performs exactly **one half-barrier cycle** — one release phase
//!   plus one join phase (2 phases) — per `parallel_for`, regardless of the loop
//!   variant;
//! * the full-barrier ablation performs exactly **two full barriers** (4 phases) per
//!   loop;
//! * a merged reduction performs exactly **`P − 1` combines** and *no additional
//!   barrier* beyond the loop's own half-barrier;
//! * the OpenMP-like baseline pays 2 full barriers per plain loop and 3 per
//!   reduction loop;
//! * the Cilk hybrid's fine-grain path has the same structure as the fine-grain pool;
//! * the work-stealing chunk pool pays exactly the same synchronization (one
//!   half-barrier cycle per loop, `P − 1` combines per reduction) and accounts every
//!   pre-split chunk exactly once;
//! * the hierarchical half-barrier performs exactly one cross-socket rendezvous per
//!   cycle and exactly one arrival per worker per cycle on each socket.
//!
//! These claims are only *observable* through the instrumentation counters, so the
//! whole file is compiled out in a `stats-off` build (where every counter reads
//! zero by design); `tests/stats_off.rs` covers that configuration instead.

#![cfg(not(feature = "stats-off"))]

use parlo_affinity::{PinPolicy, PlacementConfig, Topology};
use parlo_cilk::CilkPool;
use parlo_core::{BarrierKind, Config, FineGrainPool};
use parlo_omp::{OmpTeam, Schedule};
use parlo_steal::{total_chunks, StealConfig, StealPool};

const HALF_KINDS: [BarrierKind; 2] = [BarrierKind::TreeHalf, BarrierKind::CentralizedHalf];
const FULL_KINDS: [BarrierKind; 2] = [BarrierKind::TreeFull, BarrierKind::CentralizedFull];

#[test]
fn every_parallel_for_variant_costs_exactly_one_half_barrier_cycle() {
    for kind in HALF_KINDS {
        for threads in 1..=4 {
            let mut pool = FineGrainPool::new(Config::builder(threads).barrier(kind).build());
            let loops: [&mut dyn FnMut(&mut FineGrainPool); 5] = [
                &mut |p| p.parallel_for(0..100, |_| {}),
                &mut |p| p.parallel_for_blocks(0..100, |_| {}),
                &mut |p| p.parallel_for_chunked(0..100, 7, |_| {}),
                &mut |p| p.parallel_for_dynamic(0..100, 7, |_| {}),
                &mut |p| p.broadcast(|_| {}),
            ];
            for run in loops {
                let before = pool.stats();
                run(&mut pool);
                let delta = pool.stats().since(&before);
                assert_eq!(delta.loops, 1, "{} @ {threads}T", kind.label());
                assert_eq!(
                    delta.barrier_phases,
                    2,
                    "one release + one join phase per loop ({} @ {threads}T)",
                    kind.label()
                );
            }
        }
    }
}

#[test]
fn full_barrier_ablation_doubles_the_phases_per_loop() {
    for kind in FULL_KINDS {
        for threads in 1..=4 {
            let mut pool = FineGrainPool::new(Config::builder(threads).barrier(kind).build());
            let before = pool.stats();
            pool.parallel_for(0..100, |_| {});
            let delta = pool.stats().since(&before);
            assert_eq!(
                delta.barrier_phases,
                4,
                "2 full barriers x 2 phases per loop ({} @ {threads}T)",
                kind.label()
            );
        }
    }
}

#[test]
fn merged_reduction_performs_exactly_p_minus_1_combines_and_no_extra_barrier() {
    const REPS: u64 = 7;
    for threads in 1..=6 {
        let mut pool = FineGrainPool::with_threads(threads);
        let before = pool.stats();
        for _ in 0..REPS {
            let sum = pool.parallel_reduce(0..500, || 0u64, |a, i| a + i as u64, |a, b| a + b);
            assert_eq!(sum, (0..500u64).sum());
        }
        let delta = pool.stats().since(&before);
        assert_eq!(delta.reductions, REPS);
        assert_eq!(
            delta.combine_ops,
            REPS * (threads as u64 - 1),
            "exactly P-1 combines per reduction at {threads} threads"
        );
        assert_eq!(
            delta.barrier_phases,
            REPS * 2,
            "the reduction is merged into the loop's own half-barrier (no third barrier)"
        );
    }
}

#[test]
fn ordered_reduction_also_performs_exactly_p_minus_1_combines() {
    for threads in 1..=6 {
        let mut pool = FineGrainPool::with_threads(threads);
        let before = pool.stats();
        let s = pool.parallel_reduce_ordered(
            0..26,
            String::new,
            |mut acc, i| {
                acc.push((b'a' + i as u8) as char);
                acc
            },
            |mut a, b| {
                a.push_str(&b);
                a
            },
        );
        assert_eq!(s, "abcdefghijklmnopqrstuvwxyz");
        let delta = pool.stats().since(&before);
        assert_eq!(delta.combine_ops, threads as u64 - 1);
        assert_eq!(delta.barrier_phases, 2);
    }
}

#[test]
fn omp_baseline_pays_two_full_barriers_per_loop_and_three_per_reduction() {
    for threads in 1..=4 {
        let mut team = OmpTeam::with_threads(threads);
        for schedule in [
            Schedule::Static,
            Schedule::StaticChunked(8),
            Schedule::Dynamic(4),
            Schedule::Guided(2),
        ] {
            let before = team.stats();
            team.parallel_for(0..200, schedule, |_| {});
            let delta_phases = team.stats().barrier_phases - before.barrier_phases;
            assert_eq!(
                delta_phases, 4,
                "fork + join full barriers per plain loop ({schedule:?} @ {threads}T)"
            );
        }

        let before = team.stats();
        let sum = team.parallel_reduce(
            0..200,
            Schedule::Static,
            || 0u64,
            |a, i| a + i as u64,
            |a, b| a + b,
        );
        assert_eq!(sum, (0..200u64).sum());
        let after = team.stats();
        assert_eq!(
            after.barrier_phases - before.barrier_phases,
            6,
            "a reduction loop pays a third full barrier ({threads}T)"
        );
        assert_eq!(after.combine_ops - before.combine_ops, threads as u64 - 1);
    }
}

#[test]
fn hierarchical_barrier_has_exact_per_socket_arrivals_and_one_rendezvous_per_loop() {
    const LOOPS: u64 = 12;
    for (sockets, cores) in [(2usize, 4usize), (4, 8)] {
        let threads = sockets * cores;
        let placement = PlacementConfig::synthetic(sockets, cores).with_pin(PinPolicy::None);
        let mut pool = FineGrainPool::with_placement(threads, &placement);
        for _ in 0..LOOPS {
            pool.parallel_for(0..threads * 3, |_| {});
        }
        let h = pool
            .hierarchy_stats()
            .expect("synthetic placement enables the hierarchical half-barrier");
        assert_eq!(h.cycles, LOOPS, "{sockets}x{cores}");
        assert_eq!(
            h.cross_socket_rendezvous, LOOPS,
            "exactly one cross-socket rendezvous per loop on {sockets}x{cores}"
        );
        assert_eq!(h.socket_arrivals.len(), sockets);
        // Socket 0 hosts the master, which joins without an explicit arrival; every
        // remote socket records one arrival per member per loop.
        assert_eq!(h.socket_arrivals[0], LOOPS * (cores as u64 - 1));
        for s in 1..sockets {
            assert_eq!(h.socket_arrivals[s], LOOPS * cores as u64, "socket {s}");
        }
        // The barrier phases are unchanged by the hierarchy: still one half-barrier
        // (2 phases) per loop, i.e. the paper's structural claim holds hierarchically.
        assert_eq!(pool.stats().barrier_phases, LOOPS * 2);
    }
}

#[test]
fn hierarchical_reduction_still_combines_every_worker_exactly_once() {
    for (sockets, cores) in [(2usize, 4usize), (4, 8)] {
        let threads = sockets * cores;
        let placement = PlacementConfig::synthetic(sockets, cores).with_pin(PinPolicy::None);
        let mut pool = FineGrainPool::with_placement(threads, &placement);
        let sum = pool.parallel_reduce(0..1000, || 0u64, |a, i| a + i as u64, |a, b| a + b);
        assert_eq!(sum, (0..1000u64).sum());
        assert_eq!(
            pool.stats().combine_ops,
            threads as u64 - 1,
            "P-1 combines on {sockets}x{cores}"
        );
    }
}

#[test]
fn partially_populated_sockets_keep_the_invariants() {
    // 6 threads on a 4x8 shape populate only one remote socket... (w/8)%4: workers
    // 0..5 all land on socket 0, so no rendezvous happens; 10 threads span 2 sockets.
    let placement = PlacementConfig::synthetic(4, 8).with_pin(PinPolicy::None);
    let topo = Topology::synthetic(4, 8).unwrap();
    for threads in [6usize, 10] {
        let populated = topo
            .worker_groups(threads)
            .iter()
            .filter(|g| !g.is_empty())
            .count();
        let mut pool = FineGrainPool::with_placement(threads, &placement);
        pool.parallel_for(0..100, |_| {});
        let h = pool.hierarchy_stats().unwrap();
        assert_eq!(h.cycles, 1);
        assert_eq!(
            h.cross_socket_rendezvous,
            u64::from(populated > 1),
            "{threads} threads"
        );
        assert_eq!(
            h.socket_arrivals.iter().sum::<u64>(),
            threads as u64 - 1,
            "every worker arrives exactly once ({threads} threads)"
        );
    }
}

#[test]
fn stealing_pool_pays_exactly_one_half_barrier_cycle_per_loop() {
    const REPS: u64 = 7;
    for threads in 1..=4 {
        let mut pool = StealPool::with_threads(threads);
        let before = pool.stats();
        for _ in 0..REPS {
            pool.steal_for(0..200, |_| {});
        }
        let d = pool.stats().since(&before);
        assert_eq!(d.loops, REPS);
        assert_eq!(
            d.barrier_phases,
            REPS * 2,
            "one release + one join phase per stealing loop at {threads}T"
        );
    }
}

#[test]
fn stealing_reduction_performs_exactly_p_minus_1_combines_and_no_extra_barrier() {
    const REPS: u64 = 5;
    for threads in 1..=6 {
        let mut pool = StealPool::with_threads(threads);
        let before = pool.stats();
        for _ in 0..REPS {
            let sum = pool.steal_reduce(0..500, || 0u64, |a, i| a + i as u64, |a, b| a + b);
            assert_eq!(sum, (0..500u64).sum());
        }
        let d = pool.stats().since(&before);
        assert_eq!(d.reductions, REPS);
        assert_eq!(
            d.combine_ops,
            REPS * (threads as u64 - 1),
            "exactly P-1 combines per stealing reduction at {threads} threads"
        );
        assert_eq!(
            d.barrier_phases,
            REPS * 2,
            "the reduction is merged into the loop's own half-barrier"
        );
    }
}

#[test]
fn stealing_pool_chunk_accounting_is_exact_across_thread_counts() {
    // Both sweep modes — the flat random-victim ring and the tiered locality-aware
    // order — must account every pre-split chunk exactly once and classify every
    // hit as either same-socket or cross-socket.
    for locality in [false, true] {
        for threads in 1..=4usize {
            for chunk in [1usize, 7, 64] {
                let mut pool = StealPool::new(
                    StealConfig::with_threads(threads)
                        .with_chunk(chunk)
                        .with_locality(locality),
                );
                let before = pool.stats();
                pool.steal_for(0..613, |_| {});
                let d = pool.stats().since(&before);
                assert_eq!(
                    d.chunks_executed(),
                    total_chunks(&(0..613), threads, chunk),
                    "{threads}T chunk {chunk} locality {locality}: every pre-split chunk \
                     executed exactly once"
                );
                assert_eq!(d.chunks_per_worker.len(), threads);
                assert!(d.steals_hit <= d.steals_attempted);
                assert_eq!(
                    d.local_steals + d.remote_steals,
                    d.steals_hit,
                    "every hit classified exactly once (locality {locality})"
                );
            }
        }
    }
}

#[test]
fn stealing_pool_keeps_hierarchical_invariants_on_synthetic_topologies() {
    const LOOPS: u64 = 6;
    for (sockets, cores) in [(2usize, 4usize), (4, 8)] {
        let threads = sockets * cores;
        let placement = PlacementConfig::synthetic(sockets, cores).with_pin(PinPolicy::None);
        let mut pool = StealPool::with_placement(threads, &placement);
        for _ in 0..LOOPS {
            pool.steal_for(0..threads * 5, |_| {});
        }
        let h = pool
            .hierarchy_stats()
            .expect("synthetic placement enables the hierarchical half-barrier");
        assert_eq!(h.cycles, LOOPS, "{sockets}x{cores}");
        assert_eq!(
            h.cross_socket_rendezvous, LOOPS,
            "exactly one cross-socket rendezvous per stealing loop on {sockets}x{cores}"
        );
        assert_eq!(
            h.socket_arrivals.iter().sum::<u64>(),
            LOOPS * (threads as u64 - 1),
            "every worker arrives exactly once per loop"
        );
        let s = pool.stats();
        assert_eq!(s.barrier_phases, LOOPS * 2);
        // The sweep is locality-aware by default, and every hit lands in exactly
        // one tier bucket of the padded per-worker counter lines.
        assert_eq!(s.local_steals + s.remote_steals, s.steals_hit);
    }
}

#[test]
fn sticky_site_loops_keep_the_synchronization_and_chunk_invariants() {
    // Site-keyed (sticky-affinity) loops pay exactly the same synchronization as
    // plain stealing loops — one half-barrier cycle per loop, P-1 combines per
    // reduction — and the affinity table replay never changes the chunk accounting.
    use parlo_steal::{grid_chunks, StealSite};
    const REPS: u64 = 4;
    for threads in 1..=4usize {
        let mut pool = StealPool::new(StealConfig::with_threads(threads).with_chunk(11));
        let before = pool.stats();
        let site = StealSite(7);
        for _ in 0..REPS {
            let sum =
                pool.steal_reduce_at(site, 0..500, || 0u64, |a, i| a + i as u64, |a, b| a + b);
            assert_eq!(sum, (0..500u64).sum());
        }
        let d = pool.stats().since(&before);
        assert_eq!(d.loops, REPS, "{threads}T");
        assert_eq!(d.reductions, REPS);
        assert_eq!(
            d.barrier_phases,
            REPS * 2,
            "one half-barrier cycle per loop"
        );
        assert_eq!(d.combine_ops, REPS * (threads as u64 - 1));
        assert_eq!(
            d.chunks_executed(),
            REPS * grid_chunks(&(0..500), 11) as u64,
            "sticky replay preserves exact coverage of the chunk grid at {threads}T"
        );
        assert_eq!(d.sticky_loops, REPS);
        assert_eq!(
            d.sticky_hits,
            REPS - 1,
            "first visit is cold, the rest replay"
        );
        assert_eq!(d.sticky_invalidations, 0);
        assert!(d.sticky_chunks_reused <= d.sticky_chunks_total);
    }
}

#[test]
fn cilk_hybrid_fine_path_has_fine_grain_structure() {
    const REPS: u64 = 5;
    for threads in 1..=4 {
        let mut pool = CilkPool::with_threads(threads);
        let before = pool.stats();
        for _ in 0..REPS {
            pool.fine_grain_for(0..300, |_| {});
        }
        let mid = pool.stats();
        assert_eq!(mid.fine_loops - before.fine_loops, REPS);

        for _ in 0..REPS {
            let sum = pool.fine_grain_reduce(0..300, || 0u64, |a, i| a + i as u64, |a, b| a + b);
            assert_eq!(sum, (0..300u64).sum());
        }
        let after = pool.stats();
        assert_eq!(
            after.fine_combine_ops - mid.fine_combine_ops,
            REPS * (threads as u64 - 1),
            "hybrid fine-grain reduction: exactly P-1 combines per call at {threads} threads"
        );
    }
}
