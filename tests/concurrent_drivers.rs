//! Concurrent-driver battery: the multi-driver contract panics loudly, not racily.
//!
//! The bug class this guards against: the pools' single-driver exclusivity used to be
//! enforced only by `&mut self` at the API edge plus an unguarded flag inside — a
//! second simultaneous driver (reached through a shared handle, FFI, or a revoked
//! lease) corrupted the barrier epoch hand-off and produced wrong sums or hangs,
//! *sometimes*.  The fix claims the pool with one atomic `swap` on loop entry and in
//! the detach hook, so whichever side comes second panics deterministically with a
//! message naming the contract.  The battery asserts exactly that:
//!
//! * (a) **entry race** — two threads driving one pool: exactly one loop wins, the
//!   other panics with "driven by two threads at once", the winner's loop and the
//!   pool itself are unharmed;
//! * (b) **revocation race**, for each of the four pool families — a second client
//!   activating its lease while the victim is mid-loop panics in the victim's detach
//!   hook with "lease revoked while a ... is in flight", the victim's in-flight loop
//!   still completes bit-exactly, and the victim re-activates and tears down cleanly.
//!
//! The panics under test fire on the *driving* threads (never inside substrate worker
//! bodies, which abort on unwind by design), so `catch_unwind` observes them.

use parlo_affinity::PlacementConfig;
use parlo_core::FineGrainPool;
use parlo_exec::Executor;
use parlo_sync::{AtomicBool, AtomicUsize, Ordering};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The pool size the CI matrix pins via `PARLO_THREADS` (same parsing as the rest of
/// the workspace); 4 when unset so a local run still exercises multiple workers.
fn pinned_threads() -> usize {
    parlo_bench::env_threads().unwrap_or(4).clamp(2, 8)
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    err.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| err.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// (a) Two threads drive one `FineGrainPool` at the same instant (through the
/// doc-hidden `&self` regression hook — the API's `&mut self` makes this impossible
/// to write safely, which is the point).  The loser must panic on the entry guard
/// before touching any loop state; the winner's loop and the pool survive.
#[test]
fn second_simultaneous_driver_panics_and_the_pool_survives() {
    let threads = pinned_threads();
    let pool = Arc::new(FineGrainPool::with_threads(threads));
    let in_body = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));

    let winner = {
        let pool = Arc::clone(&pool);
        let in_body = Arc::clone(&in_body);
        let release = Arc::clone(&release);
        std::thread::spawn(move || {
            let hits = AtomicUsize::new(0);
            // SAFETY: the harness outlives the call; the racing second driver below
            // is the deterministic panic this battery asserts.
            unsafe {
                pool.parallel_for_unsynchronized(0..threads * 8, |_| {
                    in_body.store(true, Ordering::Release);
                    while !release.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            hits.into_inner()
        })
    };

    // Only race once the winner is provably inside its loop (a body iteration is
    // running, so the pool's in-flight flag is held).
    while !in_body.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    let err = catch_unwind(AssertUnwindSafe(|| {
        // SAFETY: as above; this caller is the one that accepts the panic.
        unsafe { pool.parallel_for_unsynchronized(0..threads * 8, |_| {}) };
    }))
    .expect_err("the second simultaneous driver must panic, not interleave");
    let msg = panic_message(err);
    assert!(
        msg.contains("driven by two threads at once"),
        "loser's panic must name the contract, got: {msg}"
    );

    // The loser lost *before* corrupting anything: the winner's loop completes with
    // every iteration executed exactly once, and the pool serves further loops.
    release.store(true, Ordering::Release);
    assert_eq!(winner.join().expect("winning driver"), threads * 8);
    let mut pool = Arc::try_unwrap(pool).expect("all clones joined");
    let sum = pool.parallel_sum(0..1000, |i| i as f64);
    assert_eq!(sum, 499_500.0, "pool unusable after the racing driver lost");
}

/// (b) The revocation race, generically: `drive` runs on its own thread, builds a
/// pool of one family on the shared executor and drives one loop whose body parks on
/// `release` (flagging `in_body` first); the main thread then activates a second
/// client on the same executor, which must panic in the victim's detach hook.  The
/// victim thread afterwards re-drives its pool (the in-flight loop completed
/// unharmed, and re-activation re-adopts the still-attached workers) and lets it
/// drop there, proving teardown survived the race.
fn lease_revocation_race(
    drive: impl FnOnce(Arc<Executor>, PlacementConfig, Arc<AtomicBool>, Arc<AtomicBool>)
        + Send
        + 'static,
) {
    let threads = pinned_threads();
    let placement = PlacementConfig::default();
    let executor = Executor::for_placement(&placement);
    let in_body = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));

    let victim = {
        let executor = Arc::clone(&executor);
        let (in_body, release) = (Arc::clone(&in_body), Arc::clone(&release));
        std::thread::spawn(move || drive(executor, placement, in_body, release))
    };
    while !in_body.load(Ordering::Acquire) {
        std::thread::yield_now();
    }

    // A second client activating while the victim is mid-loop: the substrate detaches
    // the victim, whose detach hook finds the in-flight flag held and panics — on
    // *this* thread, deterministically, before the victim's workers are torn away.
    let mut aggressor = FineGrainPool::with_placement_on(threads, &placement, &executor);
    let err = catch_unwind(AssertUnwindSafe(|| {
        aggressor.parallel_for(0..threads, |_| {});
    }))
    .expect_err("activating over an in-flight loop must panic in the detach hook");
    let msg = panic_message(err);
    assert!(
        msg.contains("lease revoked while a"),
        "aggressor's panic must name the revocation contract, got: {msg}"
    );

    release.store(true, Ordering::Release);
    victim.join().expect("victim thread");
    // The aggressor's panicked loop deliberately left its own entry guard claimed
    // (its state is contractually undefined after the panic) — it must still *drop*
    // cleanly, and the substrate must end with no activation leaked.
    drop(aggressor);
    assert!(executor.stats().active.is_empty(), "activation leaked");
}

/// Body shared by every family's victim loop: flag entry, park until released, count.
fn parked_body(in_body: &AtomicBool, release: &AtomicBool, hits: &AtomicUsize) {
    in_body.store(true, Ordering::Release);
    while !release.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    hits.fetch_add(1, Ordering::Relaxed);
}

#[test]
fn lease_revocation_mid_loop_panics_fine_grain() {
    let threads = pinned_threads();
    lease_revocation_race(move |executor, placement, in_body, release| {
        let mut pool = FineGrainPool::with_placement_on(threads, &placement, &executor);
        let hits = AtomicUsize::new(0);
        pool.parallel_for(0..threads * 8, |_| parked_body(&in_body, &release, &hits));
        assert_eq!(hits.into_inner(), threads * 8, "in-flight loop mangled");
        // Recovery: the revoked lease re-activates and the next loop is bit-exact.
        assert_eq!(pool.parallel_sum(0..1000, |i| i as f64), 499_500.0);
    });
}

#[test]
fn lease_revocation_mid_region_panics_omp_team() {
    let threads = pinned_threads();
    lease_revocation_race(move |executor, placement, in_body, release| {
        let mut team = parlo_omp::OmpTeam::with_placement_on(threads, &placement, &executor);
        let hits = AtomicUsize::new(0);
        team.parallel_for(0..threads * 8, parlo_omp::Schedule::Dynamic(1), |_| {
            parked_body(&in_body, &release, &hits)
        });
        assert_eq!(hits.into_inner(), threads * 8, "in-flight region mangled");
        let sum = team.parallel_reduce(
            0..1000,
            parlo_omp::Schedule::Static,
            || 0.0f64,
            |a, i| a + i as f64,
            |a, b| a + b,
        );
        assert_eq!(sum, 499_500.0);
    });
}

#[test]
fn lease_revocation_mid_loop_panics_cilk() {
    let threads = pinned_threads();
    lease_revocation_race(move |executor, placement, in_body, release| {
        let mut pool = parlo_cilk::CilkPool::with_placement_on(threads, &placement, &executor);
        let hits = AtomicUsize::new(0);
        pool.cilk_for(0..threads * 8, |_| parked_body(&in_body, &release, &hits));
        assert_eq!(hits.into_inner(), threads * 8, "in-flight loop mangled");
        let recovered = AtomicUsize::new(0);
        pool.cilk_for(0..1000, |i| {
            recovered.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(recovered.into_inner(), 499_500);
    });
}

#[test]
fn lease_revocation_mid_loop_panics_steal() {
    let threads = pinned_threads();
    lease_revocation_race(move |executor, placement, in_body, release| {
        let mut pool = parlo_steal::StealPool::with_placement_on(threads, &placement, &executor);
        let hits = AtomicUsize::new(0);
        pool.steal_for(0..threads * 8, |_| parked_body(&in_body, &release, &hits));
        assert_eq!(hits.into_inner(), threads * 8, "in-flight loop mangled");
        let recovered = AtomicUsize::new(0);
        pool.steal_for(0..1000, |i| {
            recovered.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(recovered.into_inner(), 499_500);
    });
}
