//! Trace well-formedness battery (ISSUE 7).
//!
//! Exercises the whole substrate with tracing armed and checks the structural
//! contract of the recorded timelines: spans nest per worker, timestamps are
//! monotonic per track, the master track's loop spans bit-match `SyncStats` cycle
//! counts, and the Chrome trace-event export parses with the vendored serde and
//! round-trips.  The trace state is process-global, so every recording test
//! serializes on one mutex and identifies its master track by a unique label.
//!
//! The same file compiles without the `trace` feature (CI runs it under
//! `--no-default-features` too); the disabled half asserts the whole layer
//! compiles to nothing.

#[cfg(feature = "trace")]
mod enabled {
    use parlo_core::FineGrainPool;
    #[cfg(not(feature = "stats-off"))]
    use parlo_core::LoopRuntime;
    #[cfg(not(feature = "stats-off"))]
    use parlo_trace::TrackSnapshot;
    use parlo_trace::{EventKind, Phase, TraceSnapshot};
    use std::sync::Mutex;

    /// Serializes the recording tests: rings, the enable flag and the track
    /// registry are process-global.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_armed_trace<R>(label: &str, f: impl FnOnce() -> R) -> (R, TraceSnapshot) {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        parlo_trace::clear();
        parlo_trace::enable();
        parlo_trace::set_thread_label(label);
        let out = f();
        parlo_trace::disable();
        (out, parlo_trace::snapshot())
    }

    #[cfg(not(feature = "stats-off"))]
    fn track<'a>(snap: &'a TraceSnapshot, label: &str) -> &'a TrackSnapshot {
        snap.tracks
            .iter()
            .find(|t| t.label == label)
            .unwrap_or_else(|| panic!("no track labelled {label:?}"))
    }

    fn count(snap: &TraceSnapshot, kind: EventKind, phase: Phase) -> usize {
        snap.tracks
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == kind && e.phase == phase)
            .count()
    }

    // The bit-match against SyncStats needs the counters live; in a `stats-off`
    // build the spans are still recorded but the reference reads zero.
    #[cfg(not(feature = "stats-off"))]
    #[test]
    fn master_loop_spans_bit_match_sync_stats() {
        let (delta, snap) = with_armed_trace("battery-master", || {
            let mut pool = FineGrainPool::with_threads(3);
            let before = pool.sync_stats();
            for _ in 0..5 {
                pool.parallel_for(0..64, |_| {});
            }
            for _ in 0..3 {
                let _ = pool.parallel_reduce(0..100, || 0u64, |a, i| a + i as u64, |a, b| a + b);
            }
            pool.parallel_for_dynamic(0..64, 8, |_| {});
            pool.parallel_for_chunked(0..64, 8, |_| {});
            pool.sync_stats().since(&before)
        });
        assert_eq!(delta.loops, 10);
        let master = track(&snap, "battery-master");
        let loop_begins = master
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Begin && e.phase == Phase::Loop)
            .count() as u64;
        assert_eq!(
            loop_begins, delta.loops,
            "every run_job cycle must produce exactly one Loop span on the master track"
        );
        assert_eq!(master.dropped, 0, "battery workloads must fit the ring");
        // Combine instants are recorded next to every record_combine bump, on
        // whichever thread performed the combine.
        assert_eq!(
            count(&snap, EventKind::Instant, Phase::Combine) as u64,
            delta.combine_ops
        );
        // The half-barrier phases themselves are also on the timeline (release
        // instants, join/dispatch/arrival spans); detach cycles go through the same
        // barrier, so these are lower-bounded by the loop count rather than equal.
        assert!(count(&snap, EventKind::Instant, Phase::Release) as u64 >= delta.loops);
        assert!(count(&snap, EventKind::Begin, Phase::Join) as u64 >= delta.loops);
    }

    #[test]
    fn spans_nest_and_timestamps_are_monotonic_per_track() {
        let ((), snap) = with_armed_trace("battery-nesting", || {
            let mut pool = FineGrainPool::with_threads(4);
            for _ in 0..20 {
                pool.parallel_for(0..256, |_| {});
            }
            let _ = pool.parallel_reduce(0..512, || 0.0f64, |a, i| a + i as f64, |a, b| a + b);
            let mut steal = parlo_steal::StealPool::with_threads(3);
            for _ in 0..10 {
                steal.steal_for_with_chunk(0..64, 4, |_| {});
            }
        });
        assert!(snap.total_events() > 0);
        for t in &snap.tracks {
            let mut last_ts = 0u64;
            let mut depth = 0i64;
            for e in &t.events {
                assert!(
                    e.ts_ns >= last_ts,
                    "track {:?}: timestamps must be monotonic",
                    t.label
                );
                last_ts = e.ts_ns;
                match e.kind {
                    EventKind::Begin => depth += 1,
                    EventKind::End => {
                        depth -= 1;
                        assert!(
                            depth >= 0 || t.dropped > 0,
                            "track {:?}: span end without begin",
                            t.label
                        );
                    }
                    EventKind::Instant | EventKind::Counter => {}
                }
            }
            if t.dropped == 0 {
                assert_eq!(depth, 0, "track {:?}: spans must balance", t.label);
            }
        }
    }

    #[test]
    fn chrome_export_parses_with_vendored_serde_and_round_trips() {
        let ((), snap) = with_armed_trace("battery-chrome", || {
            let mut pool = FineGrainPool::with_threads(3);
            for _ in 0..7 {
                pool.parallel_for(0..64, |_| {});
            }
        });
        let json = parlo_trace::chrome_trace_string(&snap);
        let value: parlo_trace::serde::Value =
            parlo_trace::serde_json::from_str(&json).expect("chrome export must be valid JSON");
        let map = value.as_map().expect("top level is an object");
        let events = parlo_trace::serde::map_get(map, "traceEvents")
            .and_then(|v| v.as_seq())
            .expect("traceEvents is an array");
        assert!(!events.is_empty());
        // One thread_name metadata record per non-empty track.
        let meta = events
            .iter()
            .filter(|e| {
                e.as_map()
                    .and_then(|m| parlo_trace::serde::map_get(m, "ph"))
                    .and_then(|v| v.as_str())
                    == Some("M")
            })
            .count();
        assert_eq!(
            meta,
            snap.tracks.iter().filter(|t| !t.events.is_empty()).count()
        );
        // The exported "B" loop events match the in-memory Loop span begins.
        let loop_b = events
            .iter()
            .filter(|e| {
                let m = e.as_map().unwrap();
                parlo_trace::serde::map_get(m, "ph").and_then(|v| v.as_str()) == Some("B")
                    && parlo_trace::serde::map_get(m, "name").and_then(|v| v.as_str())
                        == Some("loop")
            })
            .count();
        assert_eq!(loop_b, count(&snap, EventKind::Begin, Phase::Loop));
        // Round-trip: serialize the parsed value and parse again — same value.
        let json2 = parlo_trace::serde_json::to_string(&value).expect("round-trip serialize");
        let value2: parlo_trace::serde::Value =
            parlo_trace::serde_json::from_str(&json2).expect("round-trip parse");
        assert_eq!(value, value2);
    }

    #[test]
    fn steal_serve_and_adaptive_events_are_recorded() {
        let (route_delta, snap) = with_armed_trace("battery-families", || {
            // 2 chunks across 3 participants: somebody must sweep for work.
            let mut steal = parlo_steal::StealPool::with_threads(3);
            for _ in 0..20 {
                steal.steal_for_with_chunk(0..8, 4, |_| {});
            }
            // A short serving session: enqueue + batch + complete on the driver.
            let exec = parlo_exec::Executor::new(
                &parlo_affinity::Topology::flat(4).unwrap(),
                parlo_affinity::PinPolicy::None,
            );
            let server = parlo_serve::Server::on_executor(
                parlo_serve::ServeConfig::default()
                    .with_workers(3)
                    .with_gang(parlo_serve::GangSizing::Fixed(3)),
                &exec,
            );
            for i in 0..4u64 {
                server
                    .submit(parlo_serve::LoopRequest::for_each(
                        parlo_serve::LoopSite::new(i),
                        0..64,
                        |_| {},
                    ))
                    .unwrap()
                    .wait();
            }
            drop(server);
            // Adaptive calibration: probes first, then routed executions.
            let mut adaptive = parlo_adaptive::AdaptivePool::with_threads(2);
            let site = parlo_adaptive::LoopSite::new(99);
            let before = adaptive.adaptive_stats();
            for _ in 0..40 {
                adaptive.parallel_for_at(site, 0..64, |_| {});
            }
            adaptive.adaptive_stats().since(&before)
        });
        assert!(count(&snap, EventKind::Instant, Phase::StealSweep) > 0);
        assert_eq!(count(&snap, EventKind::Instant, Phase::Enqueue), 4);
        assert!(count(&snap, EventKind::Begin, Phase::Batch) >= 1);
        assert!(count(&snap, EventKind::Instant, Phase::Complete) >= 1);
        assert!(count(&snap, EventKind::Counter, Phase::QueueDepth) >= 4);
        assert!(count(&snap, EventKind::Instant, Phase::Probe) as u64 >= 1);
        assert_eq!(
            count(&snap, EventKind::Instant, Phase::Route) as u64,
            route_delta.routed_loops,
            "one route instant per routed execution"
        );
        assert_eq!(
            count(&snap, EventKind::Instant, Phase::Probe) as u64,
            route_delta.seq_probes + route_delta.probes,
            "one probe instant per calibration run (sequential or parallel)"
        );
    }

    #[test]
    fn runtime_disabled_flag_suppresses_all_recording() {
        let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        parlo_trace::disable();
        parlo_trace::clear();
        let mut pool = FineGrainPool::with_threads(3);
        for _ in 0..5 {
            pool.parallel_for(0..64, |_| {});
        }
        drop(pool);
        assert_eq!(parlo_trace::snapshot().total_events(), 0);
    }

    /// Overhead guard (enabled half): a recorded event is a handful of relaxed
    /// stores into an owner-local ring — budget it generously at 2 µs to stay
    /// robust on loaded CI machines while still catching a lock or allocation
    /// sneaking onto the emission path (those cost tens of µs under contention).
    #[test]
    fn enabled_per_event_cost_is_bounded() {
        let ((), _snap) = with_armed_trace("battery-overhead", || {
            const N: u32 = 100_000;
            let start = std::time::Instant::now();
            for i in 0..N {
                parlo_trace::instant(Phase::StealSweep, i as u64, 0);
            }
            let per_event = start.elapsed().as_nanos() as f64 / N as f64;
            assert!(
                per_event < 2_000.0,
                "per-event emission cost {per_event:.0} ns exceeds the 2 µs budget"
            );
        });
    }
}

/// The disabled half: without the `trace` feature the layer must compile to
/// nothing — no ring state, no registration, empty snapshots — which is the
/// "zero atomics on the hot path" contract of the overhead guard.
#[cfg(not(feature = "trace"))]
mod disabled {
    use parlo_core::{FineGrainPool, LoopRuntime};

    #[test]
    // The point of the test is that COMPILED is the constant `false` here.
    #[allow(clippy::assertions_on_constants)]
    fn trace_layer_compiles_to_nothing() {
        assert!(!parlo_trace::COMPILED);
        assert_eq!(parlo_trace::track_capacity(), 0);
        parlo_trace::enable();
        parlo_trace::set_thread_label("ghost");
        parlo_trace::span_begin(parlo_trace::Phase::Loop, 1, 2);
        parlo_trace::instant(parlo_trace::Phase::Release, 0, 0);
        parlo_trace::counter(parlo_trace::Phase::QueueDepth, 3);
        parlo_trace::span_end(parlo_trace::Phase::Loop);
        assert!(!parlo_trace::is_enabled());
        let snap = parlo_trace::snapshot();
        assert!(snap.tracks.is_empty());
        assert_eq!(snap.total_events(), 0);
    }

    #[test]
    fn pools_run_identically_without_the_layer() {
        let mut pool = FineGrainPool::with_threads(3);
        let before = pool.sync_stats();
        let sum = pool.parallel_reduce(0..1000, || 0u64, |a, i| a + i as u64, |a, b| a + b);
        assert_eq!(sum, 499_500);
        let delta = pool.sync_stats().since(&before);
        #[cfg(not(feature = "stats-off"))]
        assert_eq!(delta.loops, 1);
        let _ = delta;
        assert_eq!(parlo_trace::snapshot().total_events(), 0);
    }
}
