//! Smoke check for the `examples/` directory: every example must build, and the
//! `*quickstart` examples (fine-grain, adaptive, steal, serve, trace) must run
//! successfully end to end.
//!
//! `cargo test` already compiles examples for the dev profile, so the nested build
//! below is normally a cache hit; its purpose is to fail this *test* (not just the
//! build) if an example regresses, and to keep `cargo run --example quickstart`
//! working as the README advertises.

use std::process::Command;

fn cargo() -> Command {
    let mut cmd = Command::new(std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into()));
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

#[test]
fn all_examples_build() {
    let output = cargo()
        .args(["build", "--examples", "--quiet"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn quickstart_example_runs() {
    let output = cargo()
        .args(["run", "--quiet", "--example", "quickstart"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "quickstart exited with {:?}:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("sum = 499999500000"),
        "quickstart output missing the expected parallel_reduce sum:\n{stdout}"
    );
    assert!(
        stdout.contains("digits in order: 0123456789"),
        "quickstart output missing the ordered-reduction line:\n{stdout}"
    );
}

#[test]
fn adaptive_quickstart_example_runs() {
    let output = cargo()
        .args(["run", "--quiet", "--example", "adaptive_quickstart"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "adaptive_quickstart exited with {:?}:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("sum = 499999500000"),
        "adaptive_quickstart output missing the routed reduction sum:\n{stdout}"
    );
    assert!(
        stdout.contains("routed to"),
        "adaptive_quickstart output missing a routing decision:\n{stdout}"
    );
    assert!(
        stdout.contains("adaptive quickstart done"),
        "adaptive_quickstart did not complete:\n{stdout}"
    );
}

#[test]
fn steal_quickstart_example_runs() {
    let output = cargo()
        .args(["run", "--quiet", "--example", "steal_quickstart"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "steal_quickstart exited with {:?}:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("sum = 499999500000"),
        "steal_quickstart output missing the reduction sum:\n{stdout}"
    );
    assert!(
        stdout.contains("steals:"),
        "steal_quickstart output missing the StealStats line:\n{stdout}"
    );
    assert!(
        stdout.contains("steal quickstart done"),
        "steal_quickstart did not complete:\n{stdout}"
    );
}

#[test]
fn trace_quickstart_example_runs() {
    let output = cargo()
        .args(["run", "--quiet", "--example", "trace_quickstart"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "trace_quickstart exited with {:?}:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("sum = 499999500000"),
        "trace_quickstart output missing the reduction sum:\n{stdout}"
    );
    assert!(
        stdout.contains("loop spans on master track: 9"),
        "trace_quickstart output missing the loop-span/SyncStats match:\n{stdout}"
    );
    assert!(
        stdout.contains("chrome trace written to"),
        "trace_quickstart output missing the export line:\n{stdout}"
    );
    assert!(
        stdout.contains("sync.loops 9"),
        "trace_quickstart output missing the registry render:\n{stdout}"
    );
    assert!(
        stdout.contains("trace quickstart done"),
        "trace_quickstart did not complete:\n{stdout}"
    );
}

#[test]
fn serve_quickstart_example_runs() {
    let output = cargo()
        .args(["run", "--quiet", "--example", "serve_quickstart"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "serve_quickstart exited with {:?}:\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("sum = 499999500000"),
        "serve_quickstart output missing the served reduction sum:\n{stdout}"
    );
    assert!(
        stdout.contains("served 101 requests"),
        "serve_quickstart output missing the ServeStats line:\n{stdout}"
    );
    assert!(
        stdout.contains("serve quickstart done"),
        "serve_quickstart did not complete:\n{stdout}"
    );
}
