//! Thread-lifecycle battery for the shared worker substrate (`parlo-exec`).
//!
//! The bug class this guards against: before the substrate existed, every pool spawned
//! its own `P − 1` workers, so the full roster plus an adaptive pool kept up to
//! `8 × (P − 1)` live OS threads compact-pinned to the same cores.  The battery
//! asserts the structural fix:
//!
//! * (a) **census** — with the whole roster *and* an `AdaptivePool` alive on one
//!   executor, the substrate holds at most `P − 1` worker threads (via `ExecStats`
//!   and via a name-filtered `/proc/self/task` census);
//! * (b) **no leaks** — after every pool type drops, zero substrate threads remain
//!   (executor teardown joins synchronously);
//! * (c) **equality** — bit-for-bit cross-runtime result equality is unchanged on the
//!   micro, skewed-geometric and triangular-nest workloads under the shared substrate,
//!   including across heavy lease churn.
//!
//! The tests share one process, and the census is process-wide, so they serialize on
//! a file-local mutex; the `/proc` census counts only `parlo-exec-*` threads, making
//! it immune to the test harness's own threads.

use parlo::prelude::*;
use parlo_adaptive::AdaptiveConfig;
use parlo_sync::{AtomicUsize, Ordering};
use parlo_workloads::{all_runtimes_on, irregular};
use std::sync::{Mutex, MutexGuard};

/// Serializes the tests of this binary: they all measure the process-wide thread
/// census, so they must not overlap.
fn census_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Counts the live threads of this process whose name starts with `parlo-exec`
/// (substrate workers are named `parlo-exec-<id>`; nothing else in the workspace
/// spawns threads).  `None` where `/proc` does not exist.
fn substrate_thread_census() -> Option<usize> {
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    let mut count = 0;
    for task in tasks.flatten() {
        let comm = task.path().join("comm");
        if let Ok(name) = std::fs::read_to_string(comm) {
            if name.trim_end().starts_with("parlo-exec") {
                count += 1;
            }
        }
    }
    Some(count)
}

/// The pool size the CI matrix pins via `PARLO_THREADS` (parsed by the single shared
/// helper in `parlo-bench`, so trimming/zero handling cannot diverge); 4 when unset
/// so a local run still exercises a multi-worker substrate.
fn pinned_threads() -> usize {
    parlo_bench::env_threads().unwrap_or(4).clamp(2, 8)
}

/// Builds the full roster plus an adaptive pool, all leasing from one executor.
fn roster_with_adaptive(
    threads: usize,
    placement: &PlacementConfig,
    executor: &std::sync::Arc<Executor>,
) -> (Vec<Box<dyn LoopRuntime>>, AdaptivePool) {
    let roster = all_runtimes_on(threads, placement, executor);
    let mut config = AdaptiveConfig::with_threads(threads);
    config.placement = *placement;
    config.executor = Some(executor.clone());
    (roster, AdaptivePool::new(config))
}

#[test]
fn census_stays_at_p_minus_one_with_full_roster_and_adaptive_pool_alive() {
    let _guard = census_lock();
    let threads = pinned_threads();
    let placement = PlacementConfig::default();
    let executor = Executor::for_placement(&placement);
    let (mut roster, mut adaptive) = roster_with_adaptive(threads, &placement, &executor);

    // Run loops on every runtime (several rounds, so the adaptive pool rotates its
    // backends through the lease too) — the substrate is now at full occupancy.
    for round in 0..3 {
        for r in roster.iter_mut() {
            let sum = r.parallel_sum(0..1000, &|i| i as f64);
            assert_eq!(sum, 499_500.0, "round {round}, runtime {}", r.name());
        }
        let sum = adaptive.parallel_sum(0..1000, &|i| i as f64);
        assert_eq!(sum, 499_500.0, "round {round}, adaptive");
    }

    // (a) The acceptance invariant, via ExecStats: 7 parallel roster runtimes + 4
    // adaptive backends = 11 leases, at most P-1 worker threads for all of them.
    let stats = executor.stats();
    assert!(
        stats.workers < threads,
        "total live OS worker threads must be <= P-1 = {}, got {stats:?}",
        threads - 1
    );
    assert_eq!(stats.leases, 11, "7 roster pools + 4 adaptive backends");
    assert_eq!(stats.pin_map.len(), stats.workers);
    assert!(
        stats.switches >= 11,
        "every pool ran at least once: {stats:?}"
    );

    // ...and via the OS itself: process-wide, only P-1 substrate threads exist.
    if let Some(census) = substrate_thread_census() {
        assert!(
            census < threads,
            "/proc census found {census} substrate threads, expected <= {}",
            threads - 1
        );
    }

    // (b) Teardown: dropping every pool and the executor handle joins the workers
    // synchronously — nothing leaks.
    drop(roster);
    drop(adaptive);
    drop(executor);
    if let Some(census) = substrate_thread_census() {
        assert_eq!(census, 0, "substrate threads leaked past executor drop");
    }
}

#[test]
fn no_threads_leak_after_every_pool_type_drops() {
    let _guard = census_lock();
    let threads = pinned_threads();
    // Each pool type standalone, on its own private substrate: create, run one loop
    // (forcing the lazy worker spawn), drop — the census must return to zero after
    // every single drop, because executor teardown joins synchronously.
    let checks: Vec<Box<dyn FnOnce()>> = vec![
        Box::new(move || {
            let mut p = FineGrainPool::with_threads(threads);
            p.parallel_for(0..64, |_| {});
        }),
        Box::new(move || {
            let mut t = OmpTeam::with_threads(threads);
            t.parallel_for(0..64, Schedule::Dynamic(8), |_| {});
        }),
        Box::new(move || {
            let mut c = CilkPool::with_threads(threads);
            c.cilk_for(0..64, |_| {});
            c.fine_grain_for(0..64, |_| {});
        }),
        Box::new(move || {
            let mut s = StealPool::with_threads(threads);
            s.steal_for(0..64, |_| {});
        }),
        Box::new(move || {
            let mut a = AdaptivePool::with_threads(threads);
            for _ in 0..8 {
                a.parallel_for(0..64, &|_| {});
            }
        }),
    ];
    for (i, check) in checks.into_iter().enumerate() {
        check();
        if let Some(census) = substrate_thread_census() {
            assert_eq!(census, 0, "pool type #{i} leaked substrate threads");
        }
    }
}

#[test]
fn cross_runtime_results_are_bit_identical_under_the_shared_substrate() {
    let _guard = census_lock();
    let threads = pinned_threads();
    // (c) All three workloads produce integer-valued f64 sums, so equality with the
    // sequential reference is exact — any scheduling corruption from lease hand-off
    // (a lost epoch, a double-executed block) would break it.
    let n = 700;
    let micro_expected: f64 = (0..n).map(|i| i as f64).sum();
    let skewed_expected = irregular::skewed_sequential(n, 2);
    let tri_expected = irregular::triangular_sequential(300);
    for placement in [
        PlacementConfig::default(),
        PlacementConfig::synthetic(2, 4).with_pin(PinPolicy::None),
    ] {
        let executor = Executor::for_placement(&placement);
        let (mut roster, adaptive) = roster_with_adaptive(threads, &placement, &executor);
        roster.push(Box::new(adaptive) as Box<dyn LoopRuntime>);
        for r in roster.iter_mut() {
            let micro = r.parallel_sum(0..n, &|i| i as f64);
            assert_eq!(micro, micro_expected, "micro on {}", r.name());
            assert_eq!(
                irregular::skewed_sum(r.as_mut(), n, 2),
                skewed_expected,
                "skewed-geometric on {}",
                r.name()
            );
            assert_eq!(
                irregular::triangular_sum(r.as_mut(), 300),
                tri_expected,
                "triangular-nest on {}",
                r.name()
            );
        }
    }
}

#[test]
fn heavy_lease_churn_preserves_results_and_counters() {
    let _guard = census_lock();
    let threads = pinned_threads();
    let placement = PlacementConfig::default();
    let executor = Executor::for_placement(&placement);
    let mut roster = all_runtimes_on(threads, &placement, &executor);
    // Interleave single loops across all runtimes for many rounds: every loop but
    // the first of a streak needs a lease switch, which is exactly the hand-off
    // machinery under stress (detach cycle, park, rendezvous, resume epochs).
    let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
    const ROUNDS: usize = 20;
    for _ in 0..ROUNDS {
        for r in roster.iter_mut() {
            r.parallel_for(0..257, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
    }
    let per_index = ROUNDS * roster.len();
    assert!(
        hits.iter().all(|h| h.load(Ordering::Relaxed) == per_index),
        "every index exactly once per loop across {ROUNDS} interleaved rounds"
    );
    let stats = executor.stats();
    assert!(stats.workers < threads);
    assert!(
        stats.switches as usize >= ROUNDS * (roster.len() - 2),
        "interleaving forces a lease switch per loop: {stats:?}"
    );
    // Per-runtime counters survived the churn: each parallel runtime ran exactly
    // ROUNDS loops worth of barrier phases (spot-check through SyncStats).
    for r in roster.iter_mut() {
        let s = r.sync_stats();
        assert!(
            s.loops == 0 || s.loops == ROUNDS as u64,
            "runtime {} counted {} loops",
            r.name(),
            s.loops
        );
    }
}

#[test]
fn empty_loops_are_noops_with_identical_sync_stats_across_runtimes() {
    let _guard = census_lock();
    let threads = pinned_threads();
    let placement = PlacementConfig::default();
    let executor = Executor::for_placement(&placement);
    let (mut roster, adaptive) = roster_with_adaptive(threads, &placement, &executor);
    roster.push(Box::new(adaptive) as Box<dyn LoopRuntime>);
    for r in roster.iter_mut() {
        let before = r.sync_stats();
        r.parallel_for(5..5, &|_| panic!("empty loop body must not run"));
        let got = r.parallel_reduce(9..9, 1.25, &|_, _| panic!("empty fold"), &|a, _| a);
        assert_eq!(got, 1.25, "empty reduction returns init on {}", r.name());
        let delta = r.sync_stats().since(&before);
        assert_eq!(
            delta,
            SyncStats::default(),
            "empty loops must leave every counter untouched on {}",
            r.name()
        );
    }
    // Empty loops never activate a lease either: a fresh roster that only ran empty
    // loops has spawned no workers at all.
    assert_eq!(executor.stats().workers, 0, "empty loops spawned workers");
}
