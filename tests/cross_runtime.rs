//! Integration tests spanning the whole workspace: every runtime behind the unified
//! `dyn LoopRuntime` interface (fine-grain, OpenMP-like under all three worksharing
//! schedules, Cilk-like in both its baseline and hybrid fine-grain paths, and the
//! adaptive selection runtime) must agree with each other and with sequential
//! execution on the evaluation workloads, and the structural claims of the paper
//! (barrier phases per loop, combines per reduction) must hold end to end.

use parlo::prelude::*;
use parlo_steal::total_chunks;
use parlo_sync::{AtomicUsize, Ordering};
use parlo_workloads::cache::{self, CacheTable};
use parlo_workloads::phoenix::{histogram, kmeans, linear_regression as linreg};
use parlo_workloads::{irregular, Mpdata, Sequential};

/// The full evaluation roster (including the adaptive runtime) as trait objects.
fn runtimes(threads: usize) -> Vec<Box<dyn LoopRuntime>> {
    let mut all = all_runtimes(threads);
    all.push(Box::new(AdaptivePool::with_threads(threads)));
    all
}

#[test]
fn all_runtimes_cover_a_loop_exactly_once() {
    let n = 1009;
    for r in runtimes(4).iter_mut() {
        // Several rounds so the adaptive runtime is exercised both while calibrating
        // and after routing.
        for round in 0..3 {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            r.parallel_for(0..n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "runtime {} round {round}",
                r.name()
            );
        }
    }
}

#[test]
fn all_three_omp_schedules_are_reachable_behind_dyn_loop_runtime() {
    let roster = runtimes(3);
    let names: Vec<String> = roster.iter().map(|r| r.name()).collect();
    for expected in [
        "sequential",
        "OpenMP static",
        "OpenMP dynamic",
        "OpenMP guided",
        "Cilk",
        "fine-grain Cilk",
        "fine-grain stealing",
        "adaptive",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }
    assert!(names.iter().any(|n| n.starts_with("fine-grain (")));
}

#[test]
fn mpdata_is_runtime_independent() {
    // The advected field is deterministic: every runtime must produce bit-identical
    // results because the per-node updates do not depend on the schedule.
    let mesh = parlo_workloads::Mesh::triangulated_grid(16, 12, 5);
    let reference = {
        let mut solver = Mpdata::new(mesh.clone());
        solver.run(&mut Sequential, 8, false);
        solver.psi
    };
    for r in runtimes(3).iter_mut() {
        let mut solver = Mpdata::new(mesh.clone());
        solver.run(r.as_mut(), 8, false);
        assert_eq!(solver.psi, reference, "runtime {}", r.name());
    }
}

#[test]
fn regression_sums_agree_across_runtimes() {
    let points = linreg::generate_points(30_000, -1.5, 12.0, 0.25, 99);
    let expected = linreg::sequential(&points);
    let (slope, intercept) = expected.line().unwrap();
    assert!((slope - -1.5).abs() < 0.05);
    assert!((intercept - 12.0).abs() < 0.5);

    let mut pool = FineGrainPool::with_threads(4);
    let fine = linreg::with_fine_grain(&mut pool, &points);
    let mut team = OmpTeam::with_threads(3);
    let omp = linreg::with_omp(&mut team, Schedule::Static, &points);
    let mut cilk = CilkPool::with_threads(3);
    let base = linreg::with_cilk_baseline(&mut cilk, &points);
    let hybrid = linreg::with_cilk_fine_grain(&mut cilk, &points);
    for got in [fine, omp, base, hybrid] {
        assert!((got.sx - expected.sx).abs() < 1e-6);
        assert!((got.sxy - expected.sxy).abs() < 1e-3);
        assert_eq!(got.n, expected.n);
    }
}

#[test]
fn histogram_and_kmeans_agree_across_runtimes() {
    let pixels = histogram::generate_image(20_000, 3);
    let expected = histogram::sequential(&pixels);
    let mut pool = FineGrainPool::with_threads(3);
    assert_eq!(histogram::with_fine_grain(&mut pool, &pixels), expected);
    let mut team = OmpTeam::with_threads(2);
    assert_eq!(
        histogram::with_omp(&mut team, Schedule::Dynamic(256), &pixels),
        expected
    );

    let (points, centres) = kmeans::generate_points(3000, 3, 8);
    let seq = kmeans::sequential(&points, centres.clone(), 4);
    let fine = kmeans::with_fine_grain(&mut pool, &points, centres, 4);
    for (a, b) in seq.centroids.iter().zip(&fine.centroids) {
        assert!((a.x - b.x).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9);
    }
}

#[test]
fn structural_claims_of_the_paper_hold() {
    let threads = 4;
    // Fine-grain: one half-barrier (2 phases) per loop, P-1 combines per reduction.
    let mut pool = FineGrainPool::with_threads(threads);
    pool.parallel_for(0..100, |_| {});
    let _ = pool.parallel_reduce(0..100, || 0u64, |a, i| a + i as u64, |a, b| a + b);
    // The fine-grain pool's counters come from parlo-core, so they read zero in a
    // `stats-off` build (the OMP/Cilk counters below are their own and stay live).
    #[cfg(not(feature = "stats-off"))]
    {
        let s = pool.stats();
        assert_eq!(
            s.barrier_phases, 4,
            "2 loops x 1 half-barrier (2 phases) each"
        );
        assert_eq!(s.combine_ops, (threads - 1) as u64);

        // The same structure is visible through the unified SyncStats interface.
        let sync = LoopRuntime::sync_stats(&pool);
        assert_eq!(sync.loops, 2);
        assert_eq!(sync.barrier_phases, 4);
        assert_eq!(sync.combine_ops, (threads - 1) as u64);
        assert_eq!(sync.steals, 0);
    }

    // Full-barrier ablation: twice the phases for the same loops.
    let mut full = FineGrainPool::new(
        Config::builder(threads)
            .barrier(BarrierKind::TreeFull)
            .build(),
    );
    full.parallel_for(0..100, |_| {});
    #[cfg(not(feature = "stats-off"))]
    assert_eq!(
        full.stats().barrier_phases,
        4,
        "1 loop x 2 full barriers (4 phases)"
    );
    drop(full);

    // OpenMP-like: 2 full barriers per plain loop, 3 per reduction loop.
    let mut team = OmpTeam::with_threads(threads);
    team.parallel_for(0..100, Schedule::Static, |_| {});
    let _ = team.parallel_reduce(
        0..100,
        Schedule::Static,
        || 0u64,
        |a, i| a + i as u64,
        |a, b| a + b,
    );
    assert_eq!(team.stats().barrier_phases, 4 + 6);
    assert_eq!(team.stats().combine_ops, (threads - 1) as u64);

    // Cilk hybrid: the fine-grain path performs exactly P-1 combines; the baseline
    // reducer path performs at least one merge per worker view it created.
    let mut cilk = CilkPool::with_threads(threads);
    let _ = cilk.fine_grain_reduce(0..100, || 0u64, |a, i| a + i as u64, |a, b| a + b);
    assert_eq!(cilk.stats().fine_combine_ops, (threads - 1) as u64);
    let _ = cilk.cilk_reduce(0..100_000, || 0u64, |a, i| a + i as u64, |a, b| a + b);
    assert!(cilk.stats().reduce_ops >= 1);
}

#[test]
fn irregular_workloads_are_runtime_independent_on_flat_and_synthetic_topologies() {
    // The two irregular workloads produce exactly representable sums, so every
    // runtime — the stealing pool included — must agree with sequential execution
    // bit-for-bit, on the flat detected machine and on synthetic 2x4 / 4x8 shapes
    // with hierarchical synchronization.
    let skewed_expected = irregular::skewed_sequential(600, 2);
    let tri_expected = irregular::triangular_sequential(300);
    let placements = [
        None,
        Some(PlacementConfig::synthetic(2, 4).with_pin(PinPolicy::None)),
        Some(PlacementConfig::synthetic(4, 8).with_pin(PinPolicy::None)),
    ];
    for placement in placements {
        let mut roster = match placement {
            None => runtimes(4),
            Some(p) => all_runtimes_with_placement(4, &p),
        };
        for r in roster.iter_mut() {
            assert_eq!(
                irregular::skewed_sum(r.as_mut(), 600, 2),
                skewed_expected,
                "skewed-geometric on {} ({placement:?})",
                r.name()
            );
            assert_eq!(
                irregular::triangular_sum(r.as_mut(), 300),
                tri_expected,
                "triangular-nest on {} ({placement:?})",
                r.name()
            );
        }
    }
}

#[test]
fn stealing_runtime_accounts_every_chunk_and_steal_on_irregular_workloads() {
    // Exact chunk-coverage and steal accounting through StealStats: across several
    // irregular loops, the executed chunk count equals the pre-split count, the
    // per-worker counts sum to the total, and hits never exceed attempts.
    for (sockets, cores) in [(1usize, 4usize), (2, 4), (4, 8)] {
        let threads = 4;
        let placement = PlacementConfig::synthetic(sockets, cores).with_pin(PinPolicy::None);
        let mut pool =
            StealPool::new(StealConfig::from_placement(threads, &placement).with_chunk(9));
        let before = pool.stats();
        let n = 500;
        assert_eq!(
            irregular::skewed_sum(&mut pool, n, 2),
            irregular::skewed_sequential(n, 2)
        );
        assert_eq!(
            irregular::triangular_sum(&mut pool, n),
            irregular::triangular_sequential(n)
        );
        let d = pool.stats().since(&before);
        assert_eq!(d.loops, 2, "{sockets}x{cores}");
        assert_eq!(d.reductions, 2);
        assert_eq!(d.barrier_phases, 4, "one half-barrier per loop");
        assert_eq!(d.combine_ops, 2 * (threads as u64 - 1), "P-1 combines each");
        assert_eq!(
            d.chunks_executed(),
            2 * total_chunks(&(0..n), threads, 9),
            "exact chunk coverage on {sockets}x{cores}"
        );
        assert_eq!(d.chunks_per_worker.len(), threads);
        assert_eq!(
            d.chunks_per_worker.iter().sum::<u64>(),
            d.chunks_executed(),
            "per-worker counts sum to the total"
        );
        assert!(d.steals_hit <= d.steals_attempted);
        assert!(d.steals_hit <= d.chunks_executed());
    }
}

#[test]
fn cache_hostile_workload_is_runtime_independent_across_the_full_roster() {
    // The cache-hostile probe kernel sums integer-valued f64 terms, so — like the
    // irregular kernels — every runtime must agree with sequential execution
    // bit-for-bit, on the flat machine and on a synthetic multi-socket shape.
    let n = 400;
    let units = 6;
    let table = CacheTable::for_iters(n);
    let expected = cache::cache_hostile_sequential(&table, n, units);
    let placements = [
        None,
        Some(PlacementConfig::synthetic(2, 4).with_pin(PinPolicy::None)),
    ];
    for placement in placements {
        let mut roster = match placement {
            None => runtimes(4),
            Some(p) => all_runtimes_with_placement(4, &p),
        };
        for r in roster.iter_mut() {
            assert_eq!(
                cache::cache_hostile_sum(r.as_mut(), &table, n, units),
                expected,
                "cache-hostile on {} ({placement:?})",
                r.name()
            );
        }
    }
}

#[test]
fn steal_local_ablation_is_bit_equal_with_exact_chunk_accounting() {
    // The locality switch changes only the victim order and steal batching, never
    // the results or the chunk accounting: both modes produce bit-identical sums
    // and execute exactly the pre-split chunk count.
    let n = 600;
    let units = 4;
    let chunk = 7;
    let threads = 4;
    let table = CacheTable::for_iters(n);
    let expected = cache::cache_hostile_sequential(&table, n, units);
    let skewed_expected = irregular::skewed_sequential(n, 2);
    let placement = PlacementConfig::synthetic(2, 2).with_pin(PinPolicy::None);
    for locality in [false, true] {
        let mut pool = StealPool::new(
            StealConfig::from_placement(threads, &placement)
                .with_chunk(chunk)
                .with_locality(locality),
        );
        #[cfg(not(feature = "stats-off"))]
        let before = pool.stats();
        assert_eq!(
            cache::cache_hostile_sum(&mut pool, &table, n, units),
            expected,
            "locality = {locality}"
        );
        assert_eq!(irregular::skewed_sum(&mut pool, n, 2), skewed_expected);
        #[cfg(not(feature = "stats-off"))]
        {
            let d = pool.stats().since(&before);
            assert_eq!(
                d.chunks_executed(),
                2 * total_chunks(&(0..n), threads, chunk),
                "exact chunk coverage with locality = {locality}"
            );
            assert_eq!(
                d.local_steals + d.remote_steals,
                d.steals_hit,
                "every hit classified exactly once with locality = {locality}"
            );
        }
    }
}

#[test]
fn hierarchical_sync_preserves_results_on_synthetic_topologies() {
    // The whole roster runs on synthetic multi-socket shapes with the hierarchical
    // half-barrier enabled; every runtime must still agree with sequential execution.
    // Pinning is off: the synthetic shape's core ids need not exist on the CI machine.
    for (sockets, cores) in [(2usize, 4usize), (4, 8)] {
        let threads = (sockets * cores).min(8);
        let placement = PlacementConfig::synthetic(sockets, cores).with_pin(PinPolicy::None);
        let n = 1009;
        let expected: f64 = (0..n).map(|i| (i as f64).sqrt()).sum();
        for r in all_runtimes_with_placement(threads, &placement).iter_mut() {
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            r.parallel_for(0..n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "runtime {} on {sockets}x{cores}",
                r.name()
            );
            let got = r.parallel_sum(0..n, &|i| (i as f64).sqrt());
            assert!(
                (got - expected).abs() < 1e-6,
                "runtime {} on {sockets}x{cores}: {got} vs {expected}",
                r.name()
            );
        }
    }
}

#[test]
fn hierarchical_and_flat_fine_grain_agree_on_mpdata() {
    // Bit-identical MPDATA results between the hierarchical and flat layouts of the
    // same fine-grain pool on a synthetic 2x4 machine.
    let mesh = parlo_workloads::Mesh::triangulated_grid(16, 12, 5);
    let placement = PlacementConfig::synthetic(2, 4).with_pin(PinPolicy::None);
    let mut reference = Mpdata::new(mesh.clone());
    reference.run(&mut Sequential, 8, false);
    for hierarchical in [true, false] {
        let mut pool = FineGrainPool::new(
            Config::builder(8)
                .placement(&placement.with_hierarchical(hierarchical))
                .build(),
        );
        let mut solver = Mpdata::new(mesh.clone());
        solver.run(&mut pool, 8, false);
        assert_eq!(solver.psi, reference.psi, "hierarchical={hierarchical}");
    }
}

#[test]
fn simulated_experiments_reproduce_the_paper_shape() {
    use parlo_sim::{experiments, SimMachine};
    let m = SimMachine::paper_machine();

    // Table 1 shape: the hierarchical fine-grain row has the lowest burden (in
    // particular no worse than the flat tree half-barrier), Cilk the highest.
    let t1 = experiments::table1(&m);
    let burdens: Vec<f64> = t1.rows.iter().map(|(_, v)| v[0]).collect();
    assert_eq!(t1.rows.len(), 9);
    assert_eq!(t1.rows[0].0, "Fine-grain hierarchical");
    assert_eq!(t1.rows[1].0, "Fine-grain tree");
    assert_eq!(t1.rows[4].0, "Fine-grain stealing");
    assert_eq!(t1.rows[5].0, "Fine-grain steal-local");
    assert!(
        burdens[0] <= burdens[1],
        "hierarchical must not regress the flat half-barrier"
    );
    assert!(burdens[1..].iter().all(|&d| d >= burdens[0]));
    assert_eq!(t1.rows[8].0, "Cilk");
    assert!(
        burdens[8]
            >= *burdens[..8]
                .iter()
                .fold(&0.0, |a, b| if b > a { b } else { a })
    );
    // The stealing runtime's per-worker deques stay far below the shared chunk
    // dispenser (OpenMP dynamic) and the recursive splitter (Cilk), and the
    // locality-aware sweep shaves the cross-socket steal premium off the random
    // sweep without ever costing more.
    let dynamic = burdens[t1
        .rows
        .iter()
        .position(|r| r.0 == "OpenMP dynamic")
        .unwrap()];
    assert!(burdens[4] < dynamic, "stealing beats the shared dispenser");
    assert!(
        burdens[4] < burdens[8],
        "stealing beats recursive splitting"
    );
    assert!(
        burdens[5] <= burdens[4],
        "the tiered sweep never costs more than random-victim stealing"
    );

    // Figure 2 shape: the fine-grain scheduler beats OpenMP at 48 threads.
    let ratio = experiments::figure2_right(&m);
    assert!(ratio.at(48).unwrap() > 1.05);

    // Figure 3 shape: fine-grain beats both baselines at 48 threads.
    let (fine, cilk) = experiments::figure3a(&m, 2_000_000);
    assert!(fine.at(48).unwrap() > cilk.at(48).unwrap());
}
