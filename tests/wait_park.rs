//! Oversubscription battery for the `Park` wait mode.
//!
//! Park is the policy [`WaitPolicy::auto_for`] selects when workers outnumber
//! hardware threads: a bounded spin, a bounded yield phase, then a timed condvar
//! park on the process-wide hub (`parlo_barrier::wake_parked`).  The hazard class
//! it must be immune to is the *lost wake*: a releaser stores the barrier flag
//! and rings the hub in the instant between a waiter's last flag check and its
//! sleep.  These tests drive the full pool stack — loops, reductions, every
//! barrier flavor, executor lease detach/re-attach, long master pauses — at
//! thread counts far beyond the hardware, where a deadlock or a missed wake
//! would hang the suite rather than merely slow it down.

use parlo::prelude::*;
use parlo_sync::{AtomicUsize, Ordering};

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A thread count that is oversubscribed on any machine this suite runs on.
fn oversubscribed_threads() -> usize {
    (hardware_threads() * 4).clamp(8, 32)
}

#[test]
fn park_policy_completes_loops_when_heavily_oversubscribed() {
    let threads = oversubscribed_threads();
    let mut pool = FineGrainPool::new(Config::builder(threads).wait(WaitPolicy::park()).build());
    assert_eq!(pool.config().wait.mode, WaitMode::Park);
    for round in 0..20 {
        let hits: Vec<AtomicUsize> = (0..512).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..512, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "round {round}: some index not executed exactly once"
        );
    }
}

#[test]
fn park_policy_is_exact_for_every_barrier_kind() {
    let threads = oversubscribed_threads();
    // Integer-valued f64 sum: exact in any combine order, so any lost or doubled
    // index under any barrier flavor shows up as an exact mismatch.
    let expected: f64 = (4000 * 3999 / 2) as f64;
    for kind in BarrierKind::ALL {
        let mut pool = FineGrainPool::new(
            Config::builder(threads)
                .barrier(kind)
                .wait(WaitPolicy::park())
                .build(),
        );
        let got = pool.parallel_sum(0..4000, |i| i as f64);
        assert_eq!(
            got, expected,
            "barrier {kind:?} under Park diverged from the exact sum"
        );
        let hits: Vec<AtomicUsize> = (0..300).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(0..300, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "barrier {kind:?} under Park missed or repeated an index"
        );
    }
}

/// Two parked pools alternating on one executor: every switch detaches the
/// leaving pool's workers (which may be parked on the hub, waiting for that
/// pool's next fork) and re-attaches them to the other pool.  The detach path
/// must wake parked waiters or the switch deadlocks.
#[test]
fn park_policy_wakes_cleanly_across_lease_detach_and_reattach() {
    let threads = oversubscribed_threads();
    let placement = PlacementConfig::default();
    let executor = Executor::for_placement(&placement);
    let config = || {
        Config::builder(threads)
            .placement(&placement)
            .wait(WaitPolicy::park())
            .build()
    };
    let mut a = FineGrainPool::new_on(config(), &executor);
    let mut b = FineGrainPool::new_on(config(), &executor);
    for round in 0..30 {
        let sum_a = a.parallel_sum(0..1000, |i| i as f64);
        let sum_b = b.parallel_sum(0..1000, |i| i as f64);
        assert_eq!(sum_a, 499_500.0, "pool a, round {round}");
        assert_eq!(sum_b, 499_500.0, "pool b, round {round}");
    }
    let stats = executor.stats();
    assert_eq!(stats.leases, 2);
    assert!(
        stats.switches >= 2,
        "lease must have switched between the pools: {stats:?}"
    );
}

/// Master-side pauses longer than the maximum park interval force workers all
/// the way down the wait ladder (spin → yield → repeated timed parks) before
/// each fork.  The next loop must still start promptly and compute correctly —
/// this is the lost-wake backstop working as designed.
#[test]
fn park_policy_survives_master_pauses_longer_than_max_park() {
    let threads = oversubscribed_threads();
    let mut pool = FineGrainPool::new(Config::builder(threads).wait(WaitPolicy::park()).build());
    for _ in 0..5 {
        // 12 ms > 2 * MAX_PARK (5 ms): every worker is deep in timed-park when
        // the fork arrives.
        std::thread::sleep(std::time::Duration::from_millis(12));
        let got = pool.parallel_sum(0..2000, |i| i as f64);
        assert_eq!(got, 1_999_000.0);
    }
}

/// `auto`-selected policies never pick Park when the pool is not oversubscribed
/// relative to the machine, and always pick it when it clearly is; an explicit
/// `PARLO_WAIT` would override this, so the test uses the pure constructor.
#[test]
fn auto_policy_parks_only_when_oversubscribed() {
    let hw = hardware_threads();
    let over = WaitPolicy::auto_for(hw * 4 + 1);
    if std::env::var("PARLO_WAIT").is_err() {
        assert_eq!(over.mode, WaitMode::Park, "{}x hw threads must park", 4);
        if hw > 1 {
            let under = WaitPolicy::auto_for(1);
            assert_ne!(under.mode, WaitMode::Park, "undersubscribed must not park");
        }
    }
}
