//! Property-based tests of the measured-gate statistics
//! (`parlo_bench::measured`): min-of-k aggregation and the MAD-based
//! noise-tolerant allowance.  Two properties anchor the gate's contract:
//!
//! * **no false positive at recorded noise** — a current measurement within the
//!   baseline's own recorded dispersion (`mad_k · MAD`) never fails, no matter
//!   how small the percentage threshold is;
//! * **guaranteed catch of a genuine 2× regression** — as long as the noise
//!   allowance is itself smaller than the baseline (i.e. the bench is not pure
//!   noise), a doubling always fails for any threshold up to 25%.

use parlo_bench::measured::{
    aggregate, compare_measured, mad, median, CriterionBench, CriterionRun, HostFingerprint,
    MeasuredReport, MeasuredRow,
};
use proptest::prelude::*;

fn host() -> HostFingerprint {
    HostFingerprint {
        cpus: 4,
        parlo_threads: 2,
    }
}

fn report_row(min_s: f64, mad_s: f64) -> MeasuredReport {
    MeasuredReport {
        host: host(),
        runs: 5,
        rows: vec![MeasuredRow {
            name: "g/bench".to_string(),
            min_s,
            mad_s,
            runs: 5,
        }],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The median is always within the sample range and the MAD is non-negative
    /// and bounded by the sample spread.
    #[test]
    fn median_and_mad_are_bounded_by_the_samples(
        samples in prop::collection::vec(1e-9f64..1.0, 1..40),
    ) {
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let m = median(&samples);
        prop_assert!(lo <= m && m <= hi);
        let d = mad(&samples);
        prop_assert!(d >= 0.0);
        prop_assert!(d <= hi - lo + 1e-18);
    }

    /// Min-of-k is the minimum of the per-run medians for every bench, for any
    /// partition of benches across runs.
    #[test]
    fn aggregate_min_is_the_smallest_per_run_median(
        medians in prop::collection::vec(1e-9f64..1.0, 1..8),
    ) {
        let runs: Vec<CriterionRun> = medians
            .iter()
            .map(|&m| CriterionRun {
                host: host(),
                benches: vec![CriterionBench {
                    name: "g/bench".to_string(),
                    median_s: m,
                    mad_s: 0.0,
                }],
            })
            .collect();
        let agg = aggregate(&runs).unwrap();
        let expect = medians.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(agg.rows[0].min_s, expect);
        prop_assert_eq!(agg.rows[0].runs, medians.len() as u64);
    }

    /// No false positive at recorded noise: any current value within
    /// `mad_k · MAD` of the baseline passes, even at a 0.01% threshold.
    #[test]
    fn noise_within_recorded_dispersion_never_fails(
        base_s in 1e-7f64..1e-2,
        mad_frac in 0.0f64..0.2,
        noise_frac in 0.0f64..1.0,
        mad_k in 1.0f64..8.0,
    ) {
        let mad_s = base_s * mad_frac;
        // Drift anywhere inside the noise allowance (scaled slightly under it to
        // stay clear of floating-point equality at the boundary).
        let current_s = base_s + noise_frac * 0.999 * mad_k * mad_s;
        let baseline = report_row(base_s, mad_s);
        let current = report_row(current_s, mad_s);
        let outcome = compare_measured(&current, &baseline, 0.01, mad_k);
        prop_assert!(
            outcome.passed(),
            "drift {:.3}% of a {}·MAD allowance failed: {:?}",
            noise_frac * 100.0,
            mad_k,
            outcome.failure_lines()
        );
    }

    /// Guaranteed catch: a 2× regression always fails whenever the noise
    /// allowance is smaller than the baseline itself and the percentage
    /// threshold is at most 25%.
    #[test]
    fn a_2x_regression_is_always_caught(
        base_s in 1e-7f64..1e-2,
        mad_frac in 0.0f64..0.1,
        threshold_pct in 0.1f64..25.0,
        mad_k in 1.0f64..8.0,
    ) {
        let mad_s = base_s * mad_frac;
        // Precondition of the property: the bench is not pure noise (the vendored
        // proptest has no prop_assume, so the case is vacuously true otherwise —
        // with mad_frac < 0.1 and mad_k < 8 the precondition in fact always holds).
        if mad_k * mad_s < base_s {
            let baseline = report_row(base_s, mad_s);
            let current = report_row(2.0 * base_s, mad_s);
            let outcome = compare_measured(&current, &baseline, threshold_pct, mad_k);
            prop_assert!(!outcome.passed(), "2x regression sailed through");
            prop_assert_eq!(outcome.regressions().len(), 1);
        }
    }

    /// The allowance is monotone: loosening either knob never turns a pass into
    /// a failure.
    #[test]
    fn loosening_the_gate_never_fails_a_passing_bench(
        base_s in 1e-7f64..1e-2,
        mad_frac in 0.0f64..0.2,
        drift_frac in 0.0f64..0.5,
        threshold_pct in 0.1f64..20.0,
        mad_k in 1.0f64..6.0,
    ) {
        let baseline = report_row(base_s, base_s * mad_frac);
        let current = report_row(base_s * (1.0 + drift_frac), base_s * mad_frac);
        let tight = compare_measured(&current, &baseline, threshold_pct, mad_k);
        let loose = compare_measured(&current, &baseline, threshold_pct * 2.0, mad_k + 1.0);
        if tight.passed() {
            prop_assert!(loose.passed(), "loosening both knobs must keep passing");
        }
    }
}
