//! Adaptive scheduler-selection tests.
//!
//! Routing behaviour is driven through a deterministic simulated cost model (the
//! `ProbeTimer` hook) built from the paper's Table-1 burdens, so these tests are
//! reproducible on any machine: convergence to the fine-grain backend on
//! Table-1-sized micro-loops, convergence to a balancing (dynamic/stealing) backend on
//! a skewed-body loop, the 2×-of-best acceptance bound, and re-detection of phase
//! changes.  Correctness under calibration (loops and reductions produce identical
//! results in every phase) is property-tested with the deterministic vendored
//! proptest against real execution.

use parlo::prelude::*;
use parlo_adaptive::{AdaptiveConfig, ProbeTimer};
use parlo_sync::{AtomicBool, AtomicUsize, Ordering};
use proptest::prelude::*;
use std::sync::Arc;

/// Simulated thread count (the cost model's `P`).
const P: usize = 4;
/// Work per iteration in the simulated model, seconds.
const PER_ITER: f64 = 1e-6;

const MICRO_SITE: LoopSite = LoopSite::new(1);
const SKEWED_SITE: LoopSite = LoopSite::new(2);

/// Table-1 burdens (48-thread machine), in seconds.  The stealing runtime's burden is
/// the simulated "Fine-grain stealing" row's order of magnitude: above the static
/// schedules (deque traffic, steal tail), well below the shared chunk dispenser.
fn sim_burden(backend: Backend) -> f64 {
    match backend {
        Backend::Sequential => 0.0,
        Backend::FineGrain => 5.67e-6,
        Backend::OmpStatic => 8.12e-6,
        Backend::OmpDynamic => 31.94e-6,
        Backend::OmpGuided => 20.0e-6,
        Backend::Steal => 12.94e-6,
        Backend::CilkSteal => 68.80e-6,
    }
}

/// Whether the backend re-balances load during the loop.
fn is_balancing(backend: Backend) -> bool {
    matches!(
        backend,
        Backend::OmpDynamic | Backend::OmpGuided | Backend::Steal | Backend::CilkSteal
    )
}

/// Simulated execution time of one n-iteration loop: burden + parallel span.  Balanced
/// sites parallelise perfectly (`T/P`); the skewed site concentrates half its work in
/// one static block, so non-balancing schedules wait for a straggler carrying 50% of
/// `T`.
fn sim_time(backend: Backend, skewed: bool, n: usize) -> f64 {
    let t = PER_ITER * n as f64;
    match backend {
        Backend::Sequential => t,
        b => {
            let span = if skewed && !is_balancing(b) {
                t * 0.5
            } else {
                t / P as f64
            };
            sim_burden(b) + span
        }
    }
}

/// The cost model as a probe timer: the site id selects the workload character.
struct PaperModel;

impl ProbeTimer for PaperModel {
    fn observe(&self, backend: Backend, site: LoopSite, n: usize, _wall: f64) -> f64 {
        sim_time(backend, site == SKEWED_SITE, n)
    }
}

fn sim_pool() -> AdaptivePool {
    let mut config = AdaptiveConfig::with_threads(P);
    config.timer = Arc::new(PaperModel);
    AdaptivePool::new(config)
}

/// Calibrates a site (1 sequential probe + one probe per candidate backend + a couple
/// of routed runs) and returns the decision.
fn calibrate(pool: &mut AdaptivePool, site: LoopSite, n: usize) -> parlo_adaptive::Decision {
    for _ in 0..8 {
        pool.parallel_for_at(site, 0..n, |_| {});
    }
    pool.decision(site).expect("site calibrated")
}

#[test]
fn micro_loops_converge_to_the_fine_grain_backend() {
    // A Table-1-sized micro-loop: 64 iterations of ~1 µs.
    let mut pool = sim_pool();
    let decision = calibrate(&mut pool, MICRO_SITE, 64);
    assert_eq!(decision.backend, Backend::FineGrain, "{decision:?}");
    // The fitted burden recovers the model's fine-grain burden.
    let fit = pool
        .fitted_burden(MICRO_SITE, Backend::FineGrain)
        .expect("fitted");
    assert!(
        (fit.burden - sim_burden(Backend::FineGrain)).abs() / sim_burden(Backend::FineGrain) < 0.05,
        "fitted {} vs model {}",
        fit.burden,
        sim_burden(Backend::FineGrain)
    );
}

#[test]
fn skewed_loops_converge_to_a_balancing_backend() {
    // A coarse, imbalanced loop: 512 iterations, half the work in one static block.
    let mut pool = sim_pool();
    let decision = calibrate(&mut pool, SKEWED_SITE, 512);
    assert!(
        is_balancing(decision.backend),
        "expected a dynamic/stealing backend, got {decision:?}"
    );
    // The static backends' *effective* burden absorbed the straggler time, which is
    // what priced them out.
    let static_fit = pool
        .fitted_burden(SKEWED_SITE, Backend::OmpStatic)
        .expect("fitted");
    assert!(
        static_fit.burden > 100e-6,
        "imbalance must inflate the static burden, got {static_fit:?}"
    );
}

#[test]
fn skewed_geometric_workload_routes_to_the_stealing_backend() {
    // The skewed-geometric workload (geometric weight tiers, the straggler block
    // carrying ~half of T) under the deterministic sim timer: every non-balancing
    // schedule waits for the straggler, and among the balancing candidates the
    // stealing runtime has the lowest burden — the router must select it.
    let mut pool = sim_pool();
    let decision = calibrate(&mut pool, SKEWED_SITE, 512);
    assert_eq!(
        decision.backend,
        Backend::Steal,
        "the stealing runtime is the cheapest balancing backend: {decision:?}"
    );
    // Sanity: its fitted burden recovers the model's stealing burden, not the
    // straggler-inflated effective burden the static backends show.
    let fit = pool
        .fitted_burden(SKEWED_SITE, Backend::Steal)
        .expect("fitted");
    assert!(
        (fit.burden - sim_burden(Backend::Steal)).abs() / sim_burden(Backend::Steal) < 0.05,
        "fitted {} vs model {}",
        fit.burden,
        sim_burden(Backend::Steal)
    );
}

#[test]
fn adaptive_matches_the_best_fixed_backend_within_2x_simulated_burden() {
    // Acceptance bound: on both a fine-grain and a coarse-grain workload, the chosen
    // backend's simulated execution time is within 2x of the best fixed backend's.
    for (site, n, skewed) in [(MICRO_SITE, 64, false), (SKEWED_SITE, 512, true)] {
        let mut pool = sim_pool();
        let decision = calibrate(&mut pool, site, n);
        let candidates: Vec<Backend> = std::iter::once(Backend::Sequential)
            .chain(pool.backends().iter().copied())
            .collect();
        let best = candidates
            .iter()
            .map(|&b| sim_time(b, skewed, n))
            .fold(f64::INFINITY, f64::min);
        let chosen = sim_time(decision.backend, skewed, n);
        assert!(
            chosen <= 2.0 * best,
            "site {site:?}: chose {:?} at {chosen:.2e}s, best fixed backend {best:.2e}s",
            decision.backend
        );
    }
}

#[test]
fn reprobing_detects_a_phase_change() {
    // The same site changes character mid-run (balanced -> skewed); after the re-probe
    // interval the router must re-calibrate and move off the static backend.
    struct SwitchableModel {
        skewed: AtomicBool,
    }
    impl ProbeTimer for SwitchableModel {
        fn observe(&self, backend: Backend, _: LoopSite, n: usize, _wall: f64) -> f64 {
            sim_time(backend, self.skewed.load(Ordering::Relaxed), n)
        }
    }

    let model = Arc::new(SwitchableModel {
        skewed: AtomicBool::new(false),
    });
    let mut config = AdaptiveConfig::with_threads(P);
    config.timer = model.clone();
    config.reprobe_interval = 3;
    let mut pool = AdaptivePool::new(config);
    let site = LoopSite::new(7);

    let first = calibrate(&mut pool, site, 256);
    assert!(!is_balancing(first.backend), "balanced phase: {first:?}");

    // Phase change: the loop body becomes imbalanced.
    model.skewed.store(true, Ordering::Relaxed);
    for _ in 0..16 {
        pool.parallel_for_at(site, 0..256, |_| {});
    }
    let second = pool.decision(site).expect("re-calibrated");
    assert!(
        is_balancing(second.backend),
        "after the phase change: {second:?}"
    );
    assert!(pool.adaptive_stats().reprobes >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Calibration never changes loop results: across the sequential probe, every
    /// backend probe and the routed executions, each index is executed exactly once
    /// per call, for arbitrary ranges and thread counts (real execution, wall-clock
    /// probes).
    #[test]
    fn calibration_never_changes_loop_results(
        len in 0usize..400,
        start in 0usize..40,
        threads in 1usize..4,
        rounds in 1usize..9,
    ) {
        let mut pool = AdaptivePool::with_threads(threads);
        let site = LoopSite::new(0xF00D);
        for _ in 0..rounds {
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            pool.parallel_for_at(site, start..start + len, |i| {
                hits[i - start].fetch_add(1, Ordering::Relaxed);
            });
            prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    /// Calibration never changes reduction results: the routed sum equals the
    /// sequential sum in every phase (exactly, because the test values are small
    /// integers).
    #[test]
    fn calibration_never_changes_reduction_results(
        values in prop::collection::vec(-100i32..100, 0..300),
        threads in 1usize..4,
    ) {
        let expected: f64 = values.iter().map(|&v| v as f64).sum();
        let mut pool = AdaptivePool::with_threads(threads);
        let site = LoopSite::new(0xBEEF);
        for _ in 0..7 {
            let got = pool.parallel_sum_at(site, 0..values.len(), |i| values[i] as f64);
            prop_assert!((got - expected).abs() < 1e-9, "got {}, expected {}", got, expected);
        }
    }
}
