//! The stealing-focused test battery (property tests).
//!
//! Work stealing is nondeterministic machinery, so these tests pin its invariants
//! under *many* schedules rather than one:
//!
//! * the chunk deque itself is checked against a reference model (`VecDeque`) for
//!   owner-LIFO / thief-FIFO ordering over arbitrary seeded operation sequences, and
//!   against a multi-threaded race for exactly-once delivery;
//! * the pool is driven through seeded steal schedules via the injectable
//!   [`SchedulePerturbation`] hook (delays + victim rotations derived from a
//!   proptest-sampled seed, which itself derives from the vendored proptest's
//!   `PROPTEST_RNG_SEED` plumbing) and must execute every chunk exactly once — no
//!   lost ranges, no duplicated ranges — with exact [`StealStats`] accounting;
//! * reductions must produce the sequential result under every perturbed schedule.

use parlo::prelude::*;
use parlo::steal::{total_chunks, ChunkDeque, ChunkRange, Steal};
use parlo_sync::{AtomicUsize, Ordering};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::sync::Arc;

/// Splitmix64, used to derive deterministic operation sequences from a sampled seed.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The pool size the CI matrix pins via `PARLO_THREADS` (4 when unset/invalid, so a
/// local run still exercises a multi-worker pool).  Parsing goes through the single
/// shared helper in `parlo-bench`, so the battery can never diverge from the bench
/// bins on trimming or zero rejection.
fn env_threads() -> usize {
    parlo_bench::env_threads().unwrap_or(4)
}

/// The exactly-once and exact-accounting invariants at the *matrix-pinned* pool size:
/// the proptests below sample their own thread counts, so this is the test that makes
/// each `PARLO_THREADS` CI job exercise a distinct fixed pool size.
#[test]
fn battery_holds_at_the_env_pinned_pool_size() {
    let threads = env_threads();
    for seed in [3u64, 0x5EED, 0xFEED_FACE] {
        let config = StealConfig::with_threads(threads)
            .with_perturbation(Arc::new(SeededPerturbation::new(seed)))
            .with_chunk(5);
        let mut pool = StealPool::new(config);
        let hits: Vec<AtomicUsize> = (0..997).map(|_| AtomicUsize::new(0)).collect();
        pool.steal_for(0..997, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "exactly once at {threads} threads (seed {seed})"
        );
        let sum = pool.steal_reduce(0..997, || 0u64, |a, i| a + i as u64, |a, b| a + b);
        assert_eq!(sum, (0..997u64).sum(), "{threads} threads (seed {seed})");
        let stats = pool.stats();
        assert_eq!(stats.chunks_per_worker.len(), threads);
        assert_eq!(
            stats.chunks_executed(),
            2 * total_chunks(&(0..997), threads, 5),
            "exact chunk coverage at {threads} threads"
        );
        assert_eq!(stats.combine_ops, threads as u64 - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Single-threaded model check of the chunk deque: for an arbitrary seeded
    /// sequence of pushes, owner pops and (quiescent) steals, the deque behaves
    /// exactly like a double-ended queue where the owner takes from the back (LIFO,
    /// most recently pushed first) and the thief from the front (FIFO, oldest first).
    #[test]
    fn chunk_deque_matches_the_lifo_fifo_reference_model(
        seed in 0u64..u64::MAX,
        ops in 16usize..200,
    ) {
        let deque = ChunkDeque::new(64);
        let mut model: VecDeque<ChunkRange> = VecDeque::new();
        let mut rng = seed;
        let mut next_chunk = 0usize;
        for _ in 0..ops {
            match splitmix64(&mut rng) % 3 {
                0 => {
                    let c = ChunkRange { start: next_chunk, end: next_chunk + 1 };
                    next_chunk += 1;
                    // SAFETY: this thread is the deque's owner.
                    if unsafe { deque.push(c) }.is_ok() {
                        model.push_back(c);
                    } else {
                        prop_assert_eq!(model.len(), deque.capacity(), "Full only at capacity");
                    }
                }
                1 => {
                    // Owner pop: must yield the most recently pushed remaining chunk.
                    // SAFETY: this thread is the deque's owner.
                    let got = unsafe { deque.pop() };
                    prop_assert_eq!(got, model.pop_back(), "owner is LIFO");
                }
                _ => {
                    // Quiescent steal: must yield the oldest remaining chunk.
                    let got = match deque.steal() {
                        Steal::Success(c) => Some(c),
                        Steal::Empty => None,
                        Steal::Retry => {
                            prop_assert!(false, "no contention, Retry impossible");
                            unreachable!()
                        }
                    };
                    prop_assert_eq!(got, model.pop_front(), "thief is FIFO");
                }
            }
            prop_assert_eq!(deque.len(), model.len());
        }
    }

    /// Multi-threaded exactly-once check of the deque: an owner pushes chunks and
    /// interleaves pops while thieves steal concurrently; the union of everything
    /// obtained is exactly the pushed set, with no duplicates and no losses.
    #[test]
    fn concurrent_deque_delivery_is_exactly_once(
        chunks in 32usize..600,
        thieves in 1usize..4,
        pop_stride in 2usize..5,
    ) {
        let deque = Arc::new(ChunkDeque::new(chunks.next_power_of_two()));
        let done = Arc::new(parlo_sync::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..thieves {
            let deque = deque.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match deque.steal() {
                        Steal::Success(c) => got.push(c),
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) && deque.is_empty() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
                got
            }));
        }
        let mut obtained: Vec<ChunkRange> = Vec::new();
        for k in 0..chunks {
            let c = ChunkRange { start: 8 * k, end: 8 * k + 8 };
            // SAFETY: this thread is the deque's owner.
            unsafe {
                if deque.push(c).is_err() {
                    obtained.push(c); // full: the pool would run it inline
                } else if k % pop_stride == 0 {
                    if let Some(p) = deque.pop() {
                        obtained.push(p);
                    }
                }
            }
        }
        // SAFETY: owner drain.
        while let Some(p) = unsafe { deque.pop() } {
            obtained.push(p);
        }
        done.store(true, Ordering::Release);
        for h in handles {
            obtained.extend(h.join().unwrap());
        }
        prop_assert_eq!(obtained.len(), chunks, "every chunk obtained");
        let starts: std::collections::HashSet<usize> =
            obtained.iter().map(|c| c.start).collect();
        prop_assert_eq!(starts.len(), chunks, "no chunk duplicated");
    }

    /// The pool invariant under perturbed schedules: for arbitrary ranges, chunk
    /// sizes, thread counts and perturbation seeds, every index executes exactly once
    /// and the StealStats account for every pre-split chunk exactly.
    #[test]
    fn every_chunk_executes_exactly_once_under_perturbed_schedules(
        len in 0usize..700,
        start in 0usize..64,
        chunk in 1usize..40,
        threads in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let config = StealConfig::with_threads(threads)
            .with_perturbation(Arc::new(SeededPerturbation::new(seed)))
            .with_chunk(chunk);
        let mut pool = StealPool::new(config);
        let before = pool.stats();
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool.steal_for(start..start + len, |i| {
            hits[i - start].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "lost or duplicated iterations (seed {})", seed
        );
        let d = pool.stats().since(&before);
        let expected = total_chunks(&(start..start + len), threads, chunk);
        prop_assert_eq!(d.chunks_executed(), expected, "exact chunk coverage");
        prop_assert!(d.steals_hit <= d.steals_attempted);
        prop_assert!(d.steals_hit <= d.chunks_executed());
        if len > 0 {
            prop_assert_eq!(d.loops, 1);
            prop_assert_eq!(d.barrier_phases, 2, "one half-barrier per loop");
        }
    }

    /// Reductions remain schedule-independent under perturbation: the stealing
    /// reduction of integer values equals the sequential fold exactly, with P-1
    /// combines, for every seed.
    #[test]
    fn perturbed_reductions_match_the_sequential_fold(
        values in prop::collection::vec(-1000i64..1000, 0..400),
        threads in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let expected: i64 = values.iter().sum();
        let config = StealConfig::with_threads(threads)
            .with_perturbation(Arc::new(SeededPerturbation::new(seed)))
            .with_chunk(7);
        let mut pool = StealPool::new(config);
        let got = pool.steal_reduce(0..values.len(), || 0i64, |a, i| a + values[i], |a, b| a + b);
        prop_assert_eq!(got, expected);
        if !values.is_empty() {
            prop_assert_eq!(pool.stats().combine_ops, (threads - 1) as u64);
        }
    }
}
