//! NUMA locality test battery for the work-stealing chunk runtime.
//!
//! The claims under test (the locality-aware steal sweep and the sticky per-site
//! chunk affinity of `parlo-steal`):
//!
//! * the tiered socket-local-first victim order never breaks the exactly-once
//!   delivery of pre-split chunks, under seeded schedule perturbation and under
//!   fully scripted victim orders, on flat and synthetic multi-socket topologies;
//! * when every participant lives on one socket (a saturated local tier), the sweep
//!   never records a cross-socket steal;
//! * when one socket's deques are structurally drained, the sweep falls outward —
//!   remote steals occur — and the results stay bit-equal to sequential execution;
//! * sticky per-site affinity replays the previous chunk→worker assignment on
//!   repeated same-shape loops (full reuse when no steal interferes) and fully
//!   resets when the loop shape or the pool placement changes;
//! * on the cache-hostile workload over a synthetic multi-socket machine, the tiered
//!   sweep cuts cross-socket steals by a wide margin against the flat random-victim
//!   ring, at exactly equal total chunk counts.
//!
//! Every test derives its schedule from a seeded perturbation (or scripts it
//! outright), so the battery explores many distinct steal schedules reproducibly —
//! `PROPTEST_RNG_SEED` and `PROPTEST_CASES` steer the property tests exactly as in
//! `tests/properties.rs`.
//!
//! Every claim here is stated through `StealStats` counters, so the whole file is
//! compiled out in a `stats-off` build (where every counter reads zero by design);
//! `tests/stats_off.rs` covers that configuration instead.

#![cfg(not(feature = "stats-off"))]

use parlo::prelude::*;
use parlo_steal::total_chunks;
use parlo_sync::{AtomicUsize, Ordering};
use parlo_workloads::cache::{self, CacheTable};
use parlo_workloads::irregular;
use proptest::prelude::*;
use std::sync::Arc;

/// The synthetic machine shapes the battery sweeps (sockets x cores-per-socket).
const SHAPES: [(usize, usize); 4] = [(1, 4), (2, 2), (2, 4), (4, 8)];

/// A stealing pool on a synthetic machine with a seeded perturbation.
fn pool_on(
    sockets: usize,
    cores: usize,
    threads: usize,
    chunk: usize,
    locality: bool,
    perturb: Arc<dyn SchedulePerturbation>,
) -> StealPool {
    let placement = PlacementConfig::synthetic(sockets, cores).with_pin(PinPolicy::None);
    StealPool::new(
        StealConfig::from_placement(threads, &placement)
            .with_chunk(chunk)
            .with_locality(locality)
            .with_perturbation(perturb),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exactly-once chunk delivery under the tiered victim order: for any loop
    /// shape, thread count, synthetic topology, seed and locality setting, every
    /// index runs exactly once and the executed chunk count equals the pre-split
    /// count.
    #[test]
    fn tiered_sweep_delivers_every_chunk_exactly_once(
        len in 0usize..500,
        start in 0usize..40,
        threads in 1usize..5,
        chunk in 1usize..24,
        shape in 0usize..SHAPES.len(),
        seed in 0u64..u64::MAX,
        locality in 0usize..2,
    ) {
        let locality = locality == 1;
        let (sockets, cores) = SHAPES[shape];
        let mut pool = pool_on(
            sockets, cores, threads, chunk, locality,
            Arc::new(SeededPerturbation::new(seed)),
        );
        let before = pool.stats();
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool.steal_for(start..start + len, |i| {
            hits[i - start].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let d = pool.stats().since(&before);
        prop_assert_eq!(
            d.chunks_executed(),
            total_chunks(&(start..start + len), threads, chunk)
        );
        prop_assert_eq!(d.local_steals + d.remote_steals, d.steals_hit);
    }

    /// Exactly-once delivery survives arbitrary scripted victim orders — including
    /// orders that probe nobody useful, probe out-of-range victims, or starve whole
    /// sweeps — and the reduction still equals the sequential fold bit-for-bit.
    #[test]
    fn scripted_victim_orders_preserve_exactly_once_delivery(
        len in 1usize..400,
        threads in 2usize..5,
        chunk in 1usize..16,
        shape in 0usize..SHAPES.len(),
        seed in 0u64..u64::MAX,
        orders in prop::collection::vec(prop::collection::vec(0usize..6, 0..5), 0..5),
    ) {
        let (sockets, cores) = SHAPES[shape];
        let mut pool = pool_on(
            sockets, cores, threads, chunk, true,
            Arc::new(ScriptedOrder::new(orders, seed)),
        );
        let before = pool.stats();
        let expected: u64 = (0..len as u64).map(|i| i * i).sum();
        let got = pool.steal_reduce(0..len, || 0u64, |a, i| a + (i as u64) * (i as u64), |a, b| a + b);
        prop_assert_eq!(got, expected);
        let d = pool.stats().since(&before);
        prop_assert_eq!(d.chunks_executed(), total_chunks(&(0..len), threads, chunk));
        prop_assert_eq!(
            d.chunks_per_worker.iter().sum::<u64>(),
            d.chunks_executed()
        );
    }
}

#[test]
fn saturated_local_tier_never_steals_across_sockets() {
    // With `threads <= cores_per_socket`, every participant lands on socket 0, so
    // the local tier is the whole roster: whatever schedule the perturbation drives,
    // no steal may ever be classified cross-socket.
    for (sockets, cores) in [(2usize, 4usize), (4, 8)] {
        for threads in [2usize, 3, 4] {
            assert!(threads <= cores, "shape keeps the roster on socket 0");
            let expected = irregular::skewed_sequential(400, 2);
            for seed in [3u64, 17, 91] {
                let mut pool = pool_on(
                    sockets,
                    cores,
                    threads,
                    5,
                    true,
                    Arc::new(SeededPerturbation::new(seed)),
                );
                for _ in 0..3 {
                    assert_eq!(irregular::skewed_sum(&mut pool, 400, 2), expected);
                }
                let s = pool.stats();
                assert_eq!(
                    s.remote_steals, 0,
                    "saturated local tier on {sockets}x{cores} @ {threads}T seed {seed}"
                );
                assert_eq!(s.local_steals, s.steals_hit);
            }
        }
    }
}

/// Holds the socket-1 thieves at their first sweep until both socket-0 feeders
/// have seeded their deques and entered their gate chunks.  A worker whose sweep
/// observes every deque empty is allowed to leave the loop — without this hold a
/// thief can wake before the feeders seed, see nothing to do, depart for the
/// join, and leave the gated feeders spinning on work nobody is left to execute.
struct HoldThievesForFeeders {
    feeders_gated: Arc<AtomicUsize>,
    timing: SeededPerturbation,
}

impl SchedulePerturbation for HoldThievesForFeeders {
    fn steal_sweep(&self, worker: usize, epoch: u64, attempt: u64) -> parlo_steal::SweepPlan {
        self.timing.steal_sweep(worker, epoch, attempt)
    }

    fn victim_order(
        &self,
        worker: usize,
        _epoch: u64,
        _attempt: u64,
        _nthreads: usize,
    ) -> Option<Vec<usize>> {
        if worker >= 2 {
            while self.feeders_gated.load(Ordering::Acquire) < 2 {
                std::thread::yield_now();
            }
        }
        None
    }
}

#[test]
fn drained_socket_forces_remote_steals_and_keeps_results_bit_equal() {
    // Synthetic 2x2 with 4 participants: workers {0, 1} on socket 0, {2, 3} on
    // socket 1.  Sticky affinity pins every chunk to the socket-0 feeders, and each
    // feeder's first chunk blocks until the 14 remaining chunks have executed — so
    // those 14 chunks can only be executed by the socket-1 thieves, whose local tier
    // is structurally empty.  The sweep must fall outward (remote steals occur) and
    // the reduction must still equal the sequential fold bit-for-bit.
    let n = 16usize;
    let units = 8usize;
    let table = CacheTable::for_iters(n);
    let expected = cache::cache_hostile_sequential(&table, n, units);
    // The feeders' first pops: worker 0 starts its run at index 0, worker 1 at 8.
    let gates = [0usize, 8];
    let owners: Vec<usize> = (0..n).map(|c| if c < 8 { 0 } else { 1 }).collect();

    for seed in [7u64, 23, 59] {
        let feeders_gated = Arc::new(AtomicUsize::new(0));
        let mut pool = pool_on(
            2,
            2,
            4,
            1,
            true,
            Arc::new(HoldThievesForFeeders {
                feeders_gated: Arc::clone(&feeders_gated),
                timing: SeededPerturbation::new(seed),
            }),
        );
        let site = StealSite(0xD0);
        pool.seed_affinity(site, 0..n, 1, &owners);
        let done = AtomicUsize::new(0);
        let got = pool.steal_reduce_at_with_chunk(
            site,
            0..n,
            1,
            || 0.0f64,
            |acc, i| {
                if gates.contains(&i) {
                    feeders_gated.fetch_add(1, Ordering::Release);
                    while done.load(Ordering::Acquire) < n - gates.len() {
                        std::thread::yield_now();
                    }
                } else {
                    done.fetch_add(1, Ordering::Release);
                }
                acc + table.term(i, units)
            },
            |a, b| a + b,
        );
        assert_eq!(got, expected, "bit-equal under forced remote stealing");
        let s = pool.stats();
        // All 14 non-gate chunks cross the socket boundary, and a remote hit
        // carries at most REMOTE_STEAL_BATCH = 2 chunks out of socket 0.
        assert!(
            s.remote_steals >= (n as u64 - gates.len() as u64) / 2,
            "the drained socket-1 tier must fall outward (seed {seed}): {s:?}"
        );
        assert_eq!(s.local_steals + s.remote_steals, s.steals_hit);
        assert_eq!(s.chunks_executed(), n as u64);
    }
}

/// A scripted order that probes only out-of-range victims: every sweep observes
/// "no victim has work" and gives up, so no steal ever happens and every chunk is
/// executed by the worker whose deque it was seeded into.
fn no_steal_script(threads: usize) -> Arc<dyn SchedulePerturbation> {
    Arc::new(ScriptedOrder::new(vec![vec![threads]; threads], 1))
}

#[test]
fn sticky_affinity_replays_assignments_across_repeated_site_loops() {
    // Under the no-steal script the executed owner of every chunk is exactly the
    // seeded owner, so repeated same-shape loops at one site must reuse the full
    // assignment: the reuse fraction is 1.0, deterministically.
    for threads in [2usize, 3, 4] {
        let n = 30 * threads;
        let mut pool = StealPool::new(
            StealConfig::with_threads(threads)
                .with_chunk(5)
                .with_perturbation(no_steal_script(threads)),
        );
        let site = StealSite(0x51);
        let expected: u64 = (0..n as u64).sum();
        for _ in 0..4 {
            let got = pool.steal_reduce_at(site, 0..n, || 0u64, |a, i| a + i as u64, |a, b| a + b);
            assert_eq!(got, expected);
        }
        let s = pool.stats();
        assert_eq!(s.sticky_loops, 4, "{threads}T");
        assert_eq!(s.sticky_hits, 3, "first loop is cold, the rest replay");
        assert_eq!(s.sticky_invalidations, 0);
        assert!(s.sticky_chunks_total > 0);
        assert_eq!(
            s.sticky_chunks_reused, s.sticky_chunks_total,
            "no-steal schedule: every chunk re-ran on its remembered owner ({threads}T)"
        );
        assert_eq!(s.sticky_reuse_fraction(), 1.0);
        assert_eq!(pool.remembered_sites(), 1);
    }
}

#[test]
fn sticky_affinity_resets_on_shape_and_placement_changes() {
    for threads in [2usize, 3, 4] {
        let mut pool = StealPool::new(
            StealConfig::with_threads(threads)
                .with_chunk(8)
                .with_perturbation(no_steal_script(threads)),
        );
        let site = StealSite(0xA5);
        pool.steal_for_at(site, 0..200, |_| {});
        pool.steal_for_at(site, 0..200, |_| {});
        assert_eq!(pool.stats().sticky_hits, 1);

        // Same site, different iteration count: the remembered assignment no longer
        // matches the grid and must be invalidated (a cold re-seed, not a stale hit).
        pool.steal_for_at(site, 0..120, |_| {});
        let s = pool.stats();
        assert_eq!(s.sticky_invalidations, 1, "{threads}T");
        assert_eq!(s.sticky_hits, 1, "the mismatched loop is not a hit");
        // The new shape is remembered in place of the old one and replays.
        pool.steal_for_at(site, 0..120, |_| {});
        assert_eq!(pool.stats().sticky_hits, 2);
        assert_eq!(pool.remembered_sites(), 1);

        // A pool on a different placement starts with a cold affinity table: sticky
        // state never crosses a roster/placement boundary.
        let fresh = pool_on(2, 2, threads.min(4), 8, true, no_steal_script(threads));
        assert_eq!(fresh.remembered_sites(), 0);
    }
}

#[test]
fn locality_cuts_cross_socket_steals_on_the_cache_hostile_workload() {
    // The headline claim: on the cache-hostile workload over a synthetic 4x8
    // machine, the tiered socket-local-first sweep produces several times fewer
    // cross-socket steals than the flat random-victim ring, at exactly equal total
    // chunk counts, with bit-equal results.
    let threads = 32usize;
    let n = 1024usize;
    let units = 8usize;
    let reps = 6usize;
    let chunk = 2usize;
    let table = CacheTable::for_iters(n);
    let expected = cache::cache_hostile_sequential(&table, n, units);

    let run = |locality: bool| -> StealStats {
        let mut pool = pool_on(
            4,
            8,
            threads,
            chunk,
            locality,
            Arc::new(SeededPerturbation::new(0xCAFE)),
        );
        for _ in 0..reps {
            assert_eq!(
                cache::cache_hostile_sum(&mut pool, &table, n, units),
                expected,
                "bit-equal (locality = {locality})"
            );
        }
        pool.stats()
    };
    let random = run(false);
    let local = run(true);

    assert_eq!(
        random.chunks_executed(),
        local.chunks_executed(),
        "equal total chunks in both modes"
    );
    assert_eq!(
        random.chunks_executed(),
        (reps as u64) * total_chunks(&(0..n), threads, chunk)
    );
    // 24 of every thief's 31 potential victims are cross-socket, so the flat ring
    // goes remote constantly; the tiered sweep only falls outward when a whole
    // socket is dry.  Demand at least the 3x reduction the tiered sweep is built
    // to deliver (the observed margin is far larger).
    assert!(
        3 * local.remote_steals <= random.remote_steals,
        "tiered sweep must cut cross-socket steals >= 3x: local-mode {} vs random-mode {}",
        local.remote_steals,
        random.remote_steals
    );
    assert_eq!(
        random.local_steals + random.remote_steals,
        random.steals_hit
    );
    assert_eq!(local.local_steals + local.remote_steals, local.steals_hit);
}
