//! Property-based tests (proptest) of the core invariants across the workspace.

use parlo::prelude::*;
use parlo_sync::{AtomicUsize, Ordering};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every index of a parallel loop is executed exactly once, for any range, thread
    /// count and barrier configuration.
    #[test]
    fn fine_grain_loop_covers_every_index_exactly_once(
        len in 0usize..600,
        start in 0usize..50,
        threads in 1usize..5,
        kind in 0usize..4,
    ) {
        let kind = BarrierKind::ALL[kind];
        let mut pool = FineGrainPool::new(Config::builder(threads).barrier(kind).build());
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(start..start + len, |i| {
            hits[i - start].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// The merged (half-barrier) reduction equals the sequential fold for arbitrary
    /// inputs, and performs exactly P-1 combines.
    #[test]
    fn fine_grain_reduction_matches_sequential_fold(
        values in prop::collection::vec(-1000i64..1000, 0..500),
        threads in 1usize..5,
    ) {
        let expected: i64 = values.iter().sum();
        let mut pool = FineGrainPool::with_threads(threads);
        #[cfg(not(feature = "stats-off"))]
        let before = pool.stats();
        let got = pool.parallel_reduce(0..values.len(), || 0i64, |a, i| a + values[i], |a, b| a + b);
        prop_assert_eq!(got, expected);
        // The combine counter reads zero in a `stats-off` build.
        #[cfg(not(feature = "stats-off"))]
        prop_assert_eq!(pool.stats().since(&before).combine_ops, (threads - 1) as u64);
    }

    /// The ordered reduction reproduces the sequential fold of a non-commutative
    /// operator (string concatenation) for any input and thread count.
    #[test]
    fn ordered_reduction_preserves_order(
        words in prop::collection::vec("[a-c]{0,3}", 0..60),
        threads in 1usize..5,
    ) {
        let expected: String = words.concat();
        let mut pool = FineGrainPool::with_threads(threads);
        let got = pool.parallel_reduce_ordered(
            0..words.len(),
            String::new,
            |mut acc, i| { acc.push_str(&words[i]); acc },
            |mut a, b| { a.push_str(&b); a },
        );
        prop_assert_eq!(got, expected);
    }

    /// OpenMP-like worksharing covers every index exactly once under every schedule.
    #[test]
    fn omp_schedules_cover_every_index(
        len in 0usize..500,
        threads in 1usize..4,
        schedule in 0usize..4,
        chunk in 1usize..17,
    ) {
        let schedule = match schedule {
            0 => Schedule::Static,
            1 => Schedule::StaticChunked(chunk),
            2 => Schedule::Dynamic(chunk),
            _ => Schedule::Guided(chunk),
        };
        let mut team = OmpTeam::with_threads(threads);
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        team.parallel_for(0..len, schedule, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// cilk_for covers every index exactly once for arbitrary grain sizes.
    #[test]
    fn cilk_for_covers_every_index(
        len in 0usize..800,
        threads in 1usize..4,
        grain in 1usize..40,
    ) {
        let mut pool = CilkPool::with_threads(threads);
        let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
        pool.cilk_for_with_grain(0..len, grain, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// The Cilk baseline reduction matches the sequential fold (commutative operator)
    /// for arbitrary inputs and grains.
    #[test]
    fn cilk_reduce_matches_sequential(
        values in prop::collection::vec(0u32..1000, 0..600),
        threads in 1usize..4,
        grain in 1usize..64,
    ) {
        let expected: u64 = values.iter().map(|&v| v as u64).sum();
        let mut pool = CilkPool::with_threads(threads);
        let got = pool.cilk_reduce_with_grain(0..values.len(), grain, || 0u64, |a, i| a + values[i] as u64, |a, b| a + b);
        prop_assert_eq!(got, expected);
    }

    /// The static block partition covers the range exactly once with balanced blocks.
    #[test]
    fn static_block_partition_is_exact_and_balanced(
        len in 0usize..10_000,
        threads in 1usize..64,
    ) {
        let range = 0..len;
        let mut seen = Vec::with_capacity(len);
        let mut sizes = Vec::new();
        for t in 0..threads {
            let block = parlo_core::static_block(&range, threads, t);
            sizes.push(block.len());
            seen.extend(block);
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..len).collect::<Vec<_>>());
        let min = sizes.iter().min().unwrap();
        let max = sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// The work-stealing deque preserves the multiset of pushed items under owner
    /// pops (single-threaded property; the concurrent property is covered by the
    /// stress tests in parlo-cilk).
    #[test]
    fn deque_preserves_items(ops in prop::collection::vec(0u32..3, 1..200)) {
        let deque: parlo_cilk::WorkStealingDeque<u64> = parlo_cilk::WorkStealingDeque::new(256);
        let mut pushed = 0u64;
        let mut expected: HashSet<u64> = HashSet::new();
        let mut obtained: HashSet<u64> = HashSet::new();
        for op in ops {
            match op {
                0 => {
                    // SAFETY: the proptest thread is the deque's sole owner.
                    if unsafe { deque.push(pushed) }.is_ok() {
                        expected.insert(pushed);
                    }
                    pushed += 1;
                }
                1 => {
                    // SAFETY: the proptest thread is the deque's sole owner.
                    if let Some(v) = unsafe { deque.pop() } {
                        prop_assert!(expected.contains(&v));
                        prop_assert!(obtained.insert(v), "duplicate item {}", v);
                    }
                }
                _ => {
                    if let Some(v) = deque.steal().success() {
                        prop_assert!(expected.contains(&v));
                        prop_assert!(obtained.insert(v), "duplicate item {}", v);
                    }
                }
            }
        }
        // Drain and verify everything pushed is obtained exactly once.
        // SAFETY: the proptest thread is the deque's sole owner.
        while let Some(v) = unsafe { deque.pop() } {
            prop_assert!(obtained.insert(v));
        }
        prop_assert_eq!(obtained, expected);
    }

    /// The Amdahl burden fit recovers a known burden from synthetic measurements.
    #[test]
    fn burden_fit_recovers_known_burden(
        burden_us in 0.5f64..100.0,
        threads in 2usize..64,
    ) {
        let burden = burden_us * 1e-6;
        let measurements: Vec<parlo_analysis::BurdenMeasurement> = (0..12)
            .map(|k| {
                let t_seq = 1e-6 * 1.7f64.powi(k);
                parlo_analysis::BurdenMeasurement {
                    t_seq,
                    speedup: parlo_analysis::model_speedup(t_seq, burden, threads),
                }
            })
            .collect();
        let fit = parlo_analysis::fit_burden(&measurements, threads).unwrap();
        prop_assert!((fit.burden - burden).abs() / burden < 0.01);
    }

    /// Mesh generation invariants hold for arbitrary grid sizes and seeds.
    #[test]
    fn mesh_invariants(nx in 2usize..20, ny in 2usize..20, seed in 0u64..1000) {
        let mesh = parlo_workloads::Mesh::triangulated_grid(nx, ny, seed);
        prop_assert_eq!(mesh.num_nodes(), nx * ny);
        prop_assert!(mesh.validate().is_ok());
    }

    /// Simulator monotonicity: the half-barrier never costs more than the full-barrier
    /// loop, and every scheduler's burden grows with the thread count.
    #[test]
    fn simulator_monotonicity(p in 2usize..48) {
        use parlo_sim::{burden_ns, LoopShape, SimMachine, SimScheduler};
        let m = SimMachine::paper_machine();
        let shape = LoopShape::default();
        let half = burden_ns(&m, SimScheduler::FineGrainTree, p, shape);
        let full = burden_ns(&m, SimScheduler::FineGrainTreeFull, p, shape);
        prop_assert!(half <= full);
        for s in SimScheduler::TABLE1_ORDER {
            prop_assert!(burden_ns(&m, s, p, shape) <= burden_ns(&m, s, 48, shape) * 1.05);
        }
    }
}
