//! Multi-tenant serving battery for `parlo-serve`.
//!
//! The bug class the server exists to fix: before partition leases, a second
//! concurrent driver of the substrate panicked (racily at best) instead of sharing
//! it.  The battery asserts the shared-substrate contract end to end:
//!
//! * (a) **tenancy** — several tenant threads submit through one [`Server`] on one
//!   executor; every tenant's sums are bit-equal to the sequential reference, while
//!   the substrate census (via [`ExecStats`] and a name-filtered `/proc/self/task`
//!   count) never exceeds `P − 1`;
//! * (b) **batching** — queued micro-loops are fused so a backlog costs fewer
//!   half-barrier cycles than requests ([`ServeStats::fused`] observes it);
//! * (c) **admission** — a full queue rejects `try_submit` with
//!   [`Rejected::QueueFull`] instead of blocking or corrupting, and every accepted
//!   job still completes exactly;
//! * (d) **lease churn** — a seeded proptest builds and drops servers of varying
//!   gang sizes on one long-lived executor; results stay exact and no activation or
//!   worker leaks across the churn.
//!
//! The census is process-wide, so the tests serialize on a file-local mutex, exactly
//! like the substrate battery.

use parlo_affinity::PinPolicy;
use parlo_exec::Executor;
use parlo_serve::{GangSizing, LoopRequest, LoopSite, Rejected, ServeConfig, Server};
use parlo_sync::{AtomicBool, AtomicU64, Ordering};
use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};

/// Serializes the tests of this binary: they all measure the process-wide thread
/// census, so they must not overlap.
fn census_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Counts the live threads of this process whose name starts with `parlo-exec`
/// (substrate workers are named `parlo-exec-<id>`).  `None` where `/proc` is absent.
fn substrate_thread_census() -> Option<usize> {
    let tasks = std::fs::read_dir("/proc/self/task").ok()?;
    let mut count = 0;
    for task in tasks.flatten() {
        if let Ok(name) = std::fs::read_to_string(task.path().join("comm")) {
            if name.trim_end().starts_with("parlo-exec") {
                count += 1;
            }
        }
    }
    Some(count)
}

/// The machine size the CI matrix pins via `PARLO_THREADS`; 4 when unset so a local
/// run still exercises a multi-gang server.
fn pinned_threads() -> usize {
    parlo_bench::env_threads().unwrap_or(4).clamp(2, 8)
}

/// A `P`-core substrate with no OS pinning (the battery runs on arbitrary hosts).
fn executor(cores: usize) -> Arc<Executor> {
    Executor::new(
        &parlo_affinity::Topology::flat(cores).expect("flat topology"),
        PinPolicy::None,
    )
}

/// `sum(0..n) of i` — integer-valued, so any scheduling or batching corruption
/// (a lost iteration, a double-executed fused segment) breaks exact equality.
fn expected_sum(n: usize) -> f64 {
    (0..n).map(|i| i as f64).sum()
}

#[test]
fn tenants_share_one_substrate_with_bit_equal_results_and_bounded_census() {
    let _guard = census_lock();
    let cores = pinned_threads();
    let executor = executor(cores);
    let server = Arc::new(Server::on_executor(
        ServeConfig::default().with_gang(GangSizing::Fixed(2)),
        &executor,
    ));

    // (a) Four tenant threads, each its own loop site, each checking every result
    // against the sequential reference — concurrently, through one server.
    let tenants: Vec<_> = (0..4)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let site = LoopSite::new(t as u64);
                for round in 0..20 {
                    let n = 500 + 37 * t + round;
                    let handle = server
                        .submit(LoopRequest::sum(site, 0..n, |i| i as f64))
                        .expect("server accepts while alive");
                    assert_eq!(
                        handle.wait(),
                        expected_sum(n),
                        "tenant {t} round {round}: result not bit-equal to sequential"
                    );
                }
            })
        })
        .collect();
    for t in tenants {
        t.join().expect("tenant thread");
    }

    // The substrate never grew past its capacity: P − 1 workers serve every gang
    // (driver workers included), however many tenants submit.
    let stats = executor.stats();
    assert!(
        stats.workers < cores,
        "substrate spawned {} workers on a {cores}-core machine (cap is P - 1)",
        stats.workers
    );
    if let Some(census) = substrate_thread_census() {
        assert!(
            census < cores,
            "/proc census found {census} substrate threads, expected <= {}",
            cores - 1
        );
    }
    let serve = server.stats();
    assert_eq!(serve.submitted, 80, "4 tenants x 20 rounds");
    assert_eq!(serve.completed, 80);
    assert_eq!(serve.rejected, 0);

    // Teardown joins everything synchronously — nothing leaks.
    drop(server);
    drop(executor);
    if let Some(census) = substrate_thread_census() {
        assert_eq!(census, 0, "substrate threads leaked past executor drop");
    }
}

#[test]
fn queued_micro_loops_are_batched_through_one_barrier_cycle() {
    let _guard = census_lock();
    let cores = pinned_threads();
    let executor = executor(cores);
    let server = Server::on_executor(
        ServeConfig::default().with_gang(GangSizing::Fixed(cores - 1)),
        &executor,
    );
    let site = LoopSite::new(7);

    // (b) Stall the single gang inside a first request, pile up a backlog of
    // same-site micro-loops behind it, then release: the drained backlog must fuse.
    // Only `For` loops fuse (a `Sum` needs its own reduction tree and rides alone),
    // so the backlog sums through side effects and checks exactness that way.
    let release = Arc::new(AtomicBool::new(false));
    let gate = {
        let release = Arc::clone(&release);
        server
            .submit(LoopRequest::for_each(site, 0..1, move |_| {
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .expect("gate accepted")
    };
    let sums: Arc<Vec<AtomicU64>> = Arc::new((0..32).map(|_| AtomicU64::new(0)).collect());
    let handles: Vec<_> = (0..32usize)
        .map(|k| {
            let sums = Arc::clone(&sums);
            server
                .submit(LoopRequest::for_each(site, 0..100 + k, move |i| {
                    sums[k].fetch_add(i as u64, Ordering::Relaxed);
                }))
                .expect("backlog accepted")
        })
        .collect();
    release.store(true, Ordering::Release);
    gate.wait();
    for (k, h) in handles.iter().enumerate() {
        h.wait();
        assert_eq!(
            sums[k].load(Ordering::Relaxed),
            expected_sum(100 + k) as u64,
            "backlog job {k}: fused execution lost or duplicated iterations"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.completed, 33);
    assert!(
        stats.fused >= 1,
        "a 32-deep micro-loop backlog must fuse requests into shared batches: {stats:?}"
    );
    assert!(
        stats.batches < stats.completed,
        "fusion must spend fewer barrier cycles than requests: {stats:?}"
    );
}

#[test]
fn full_queue_rejects_try_submit_without_losing_accepted_jobs() {
    let _guard = census_lock();
    let cores = pinned_threads();
    let executor = executor(cores);
    // batch_max = 1 so the stalled gate job cannot drag queued jobs into its own
    // batch, and a tiny queue so the backlog hits capacity after a handful of pushes.
    let server = Server::on_executor(
        ServeConfig::default()
            .with_gang(GangSizing::Fixed(cores - 1))
            .with_queue_capacity(2)
            .with_batch_max(1),
        &executor,
    );
    let site = LoopSite::new(0);

    let release = Arc::new(AtomicBool::new(false));
    let gate = {
        let release = Arc::clone(&release);
        server
            .submit(LoopRequest::for_each(site, 0..1, move |_| {
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
            }))
            .expect("gate accepted")
    };

    // (c) With the gang stalled, keep pushing until admission control says full:
    // at most gate + capacity jobs fit, so the 4th push can never be accepted.
    let mut accepted = Vec::new();
    let mut saw_full = false;
    for k in 0..4 {
        match server.try_submit(LoopRequest::sum(site, 0..50 + k, |i| i as f64)) {
            Ok(h) => accepted.push((k, h)),
            Err(e) => {
                assert_eq!(e, Rejected::QueueFull);
                saw_full = true;
                break;
            }
        }
    }
    assert!(
        saw_full,
        "a capacity-2 queue accepted 4 jobs behind a stalled gang"
    );

    release.store(true, Ordering::Release);
    gate.wait();
    for (k, h) in &accepted {
        assert_eq!(h.wait(), expected_sum(50 + k), "accepted job {k} lost");
    }
    let stats = server.stats();
    assert!(stats.rejected >= 1, "rejection must be counted: {stats:?}");
    assert_eq!(stats.completed, 1 + accepted.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (d) Lease churn: servers of proptest-chosen gang sizes come and go on one
    /// long-lived executor, interleaved with checked submissions.  Partition leases
    /// are carved, activated, revoked and re-carved over the same worker ids every
    /// round — any stale activation, worker-id overlap or epoch desync across the
    /// churn breaks exactness, panics the overlap guard, or hangs the drop.
    #[test]
    fn lease_churn_across_gang_sizes_preserves_results(
        gang_sizes in proptest::collection::vec(1usize..5, 1..6),
        iters in 64usize..512,
    ) {
        let _guard = census_lock();
        let cores = pinned_threads();
        let executor = executor(cores);
        for (round, g) in gang_sizes.iter().enumerate() {
            let server = Server::on_executor(
                ServeConfig::default().with_gang(GangSizing::Fixed(*g)),
                &executor,
            );
            for t in 0..3u64 {
                let n = iters + round + t as usize;
                let handle = server
                    .submit(LoopRequest::sum(LoopSite::new(t), 0..n, |i| i as f64))
                    .expect("server accepts while alive");
                prop_assert_eq!(handle.wait(), expected_sum(n));
            }
            let stats = server.stats();
            prop_assert_eq!(stats.completed, 3);
            drop(server);
            prop_assert!(
                executor.stats().active.is_empty(),
                "round {} (gang size {}) leaked an activation",
                round,
                g
            );
        }
        prop_assert!(executor.stats().workers < cores);
    }
}
