//! `stats-off` acceptance battery (ISSUE 7 satellite).
//!
//! Built only with `--features stats-off` (CI runs it explicitly).  Proves the two
//! halves of the feature's contract: every counter the fine-grain pool exposes reads
//! zero, and the *results* of parallel execution are bit-equal to the sequential
//! reference — turning the accounting off must not change scheduling behaviour.

#![cfg(feature = "stats-off")]

use parlo_core::{BarrierKind, Config, FineGrainPool, LoopRuntime, Sequential, SyncStats};
use parlo_sync::{AtomicU64, Ordering};

fn pool(kind: BarrierKind, threads: usize) -> FineGrainPool {
    FineGrainPool::new(Config::builder(threads).barrier(kind).build())
}

#[test]
fn all_counters_read_zero() {
    for kind in BarrierKind::ALL {
        let mut p = pool(kind, 3);
        p.parallel_for(0..100, |_| {});
        let _ = p.parallel_reduce(0..100, || 0u64, |a, i| a + i as u64, |a, b| a + b);
        p.parallel_for_dynamic(0..100, 8, |_| {});
        assert_eq!(
            p.stats(),
            parlo_core::StatsSnapshot::default(),
            "kind {kind:?}: stats-off must zero every counter"
        );
        assert_eq!(p.sync_stats(), SyncStats::default());
    }
}

#[test]
fn results_stay_bit_equal_to_sequential() {
    let n = 10_000usize;
    let mut seq = Sequential;
    // Integer-valued f64 folds are exact (no rounding below 2^53), so the parallel
    // combine order cannot perturb the sum — bit-equality is well-defined.
    let expected_sum = seq.parallel_sum(0..n, &|i| i as f64);
    let expected_hits: u64 = (0..n as u64).map(|i| i * 3 + 1).sum();

    for kind in BarrierKind::ALL {
        for threads in [1usize, 2, 4] {
            let mut p = pool(kind, threads);
            let got = LoopRuntime::parallel_sum(&mut p, 0..n, &|i| i as f64);
            assert_eq!(
                got.to_bits(),
                expected_sum.to_bits(),
                "kind {kind:?} threads {threads}: reduction must be bit-equal"
            );
            let acc = AtomicU64::new(0);
            p.parallel_for(0..n, |i| {
                acc.fetch_add(i as u64 * 3 + 1, Ordering::Relaxed);
            });
            assert_eq!(acc.load(Ordering::Relaxed), expected_hits);
            let exact = p.parallel_reduce(0..n, || 0u64, |a, i| a + i as u64, |a, b| a + b);
            assert_eq!(exact, (n as u64 - 1) * n as u64 / 2);
        }
    }
}
