//! Bounded model-checking battery over parlo's hot lock-free primitives.
//!
//! Exhaustively enumerates thread interleavings (up to the preemption bound)
//! of small closed programs built from the *real* shipped primitives — the
//! Chase–Lev chunk deque, the centralized release/join half-barrier pair, the
//! park hub, the trace event ring and the serve completion hand-off — and
//! checks every interleaving for data races (vector-clock happens-before over
//! the declared orderings), deadlocks and lost wakeups.
//!
//! Build and run with the model cfg (plain `cargo test` skips this file):
//!
//! ```sh
//! RUSTFLAGS="--cfg parlo_model" cargo test -p parlo --no-default-features --test model_battery
//! ```
//!
//! The mutation self-test at the bottom weakens one `Release` store to
//! `Relaxed` in a distilled copy of the deque's publication protocol and
//! asserts the checker reports the race — evidence that a green battery means
//! the orderings are load-bearing, not that the checker is blind.

#![cfg(parlo_model)]

use parlo_barrier::{wake_parked, CentralizedJoin, CentralizedRelease, WaitMode, WaitPolicy};
use parlo_serve::completion_pair;
use parlo_steal::{ChunkDeque, ChunkRange, Steal};
use parlo_sync::model;
use parlo_sync::thread;
use parlo_sync::{fence, AtomicBool, AtomicIsize, Ordering, UnsafeCell};
use parlo_trace::{EventKind, EventRing, Phase};
use std::sync::Arc;

/// Exactly-once chunk delivery: two pre-filled chunks, the owner pops once
/// while a thief drains from the top.  In every interleaving each chunk is
/// obtained by exactly one side, and the deque's internal slot cells stay
/// race-free (push's `Release` on `bottom` is the only publisher).
#[test]
fn chunk_handoff_owner_vs_thief_exactly_once() {
    let report = model::Builder::new().check(|| {
        let d = Arc::new(ChunkDeque::new(4));
        let c0 = ChunkRange { start: 0, end: 10 };
        let c1 = ChunkRange { start: 10, end: 20 };
        // SAFETY: this thread is the deque's owner; the thief only steals.
        unsafe {
            d.push(c0).unwrap();
            d.push(c1).unwrap();
        }
        let d2 = Arc::clone(&d);
        let thief = thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                match d2.steal() {
                    Steal::Success(c) => got.push(c),
                    // A failed CAS means the other side took that chunk;
                    // the next round observes the new top.
                    Steal::Retry => {}
                    Steal::Empty => break,
                }
            }
            got
        });
        // SAFETY: this thread is the deque's owner.
        let popped = unsafe { d.pop() };
        let mut all = thief.join().unwrap();
        all.extend(popped);
        all.sort_by_key(|c| c.start);
        assert_eq!(all, vec![c0, c1], "every chunk delivered exactly once");
    });
    assert!(report.complete, "exploration must be exhaustive");
}

/// The classic Chase–Lev razor edge: owner pop races a thief's steal for the
/// single last chunk.  The `top` CAS must arbitrate to exactly one winner in
/// every interleaving — zero winners loses a chunk, two duplicate it.
#[test]
fn last_chunk_steal_vs_pop_has_one_winner() {
    let report = model::Builder::new().check(|| {
        let d = Arc::new(ChunkDeque::new(2));
        let c = ChunkRange { start: 7, end: 9 };
        // SAFETY: this thread is the deque's owner.
        unsafe { d.push(c).unwrap() };
        let d2 = Arc::clone(&d);
        let thief = thread::spawn(move || match d2.steal() {
            Steal::Success(got) => {
                assert_eq!(got, c);
                true
            }
            // Retry = lost the CAS to the owner; Empty = owner already won.
            Steal::Retry | Steal::Empty => false,
        });
        // SAFETY: this thread is the deque's owner.
        let mine = unsafe { d.pop() };
        if let Some(got) = mine {
            assert_eq!(got, c);
        }
        let stolen = thief.join().unwrap();
        assert_eq!(
            usize::from(mine.is_some()) + usize::from(stolen),
            1,
            "exactly one side obtains the last chunk"
        );
    });
    assert!(report.complete, "exploration must be exhaustive");
}

/// Publication *through* the deque: the owner writes a payload cell and then
/// pushes concurrently with the thief's bounded steal attempts.  When a steal
/// succeeds, the only happens-before edge covering the payload read is the
/// push's `Release` store of `bottom` paired with steal's `Acquire` load —
/// exactly the edge the mutation self-test below knocks out.
#[test]
fn deque_publication_chain_is_race_free() {
    let report = model::Builder::new().check(|| {
        let d = Arc::new(ChunkDeque::new(2));
        let payload = Arc::new(UnsafeCell::new(0u64));
        let (d2, p2) = (Arc::clone(&d), Arc::clone(&payload));
        let thief = thread::spawn(move || {
            // Bounded attempts: some interleavings never observe the push,
            // which is fine — the racy ones are what we are exploring.
            for _ in 0..4 {
                if let Steal::Success(c) = d2.steal() {
                    // SAFETY: reading the payload the owner published before
                    // pushing this chunk; the model verifies the edge.
                    let v = p2.with(|p| unsafe { *p });
                    assert_eq!((c.start, v), (3, 41), "payload published with its chunk");
                    return true;
                }
            }
            false
        });
        // SAFETY: the thief only reads this cell after stealing the chunk
        // pushed below, which happens-after this write.
        payload.with_mut(|p| unsafe { *p = 41 });
        // SAFETY: this thread is the deque's owner.
        unsafe { d.push(ChunkRange { start: 3, end: 4 }).unwrap() };
        let _ = thief.join().unwrap();
    });
    assert!(report.complete, "exploration must be exhaustive");
}

/// Two full release→work→join epochs of the centralized half-barrier pair
/// with real payload traffic: the master broadcasts an input cell, workers
/// write per-worker result cells and arrive.  Verifies `signal`/`wait` and
/// `arrive`/`wait_all` publish everything — including the `AcqRel → Release`
/// downgrade on [`CentralizedJoin::arrive`] — and that counter reuse across
/// epochs never lets a stale read through.
#[test]
fn barrier_release_join_two_epoch_cycle() {
    let report = model::Builder::new().preemption_bound(Some(2)).check(|| {
        let release = Arc::new(CentralizedRelease::new());
        let join = Arc::new(CentralizedJoin::new(2));
        let input = Arc::new(UnsafeCell::new(0u64));
        let results = Arc::new([UnsafeCell::new(0u64), UnsafeCell::new(0u64)]);
        let spin = WaitPolicy::dedicated();
        let workers: Vec<_> = (0..2u64)
            .map(|w| {
                let (release, join) = (Arc::clone(&release), Arc::clone(&join));
                let (input, results) = (Arc::clone(&input), Arc::clone(&results));
                thread::spawn(move || {
                    for epoch in 1..=2u64 {
                        release.wait(epoch, &spin);
                        // SAFETY: the master wrote `input` before signalling
                        // this epoch; `wait`'s Acquire load publishes it.
                        let x = input.with(|p| unsafe { *p });
                        // SAFETY: this worker is the cell's only writer, and
                        // the master reads it only after `wait_all`.
                        results[w as usize].with_mut(|p| unsafe { *p = x + w + 1 });
                        join.arrive();
                    }
                })
            })
            .collect();
        for epoch in 1..=2u64 {
            // SAFETY: workers of the previous epoch have all arrived
            // (wait_all below), and this epoch's workers read only after
            // the signal that follows this write.
            input.with_mut(|p| unsafe { *p = epoch * 10 });
            release.signal(epoch);
            join.wait_all(epoch, &spin);
            for w in 0..2u64 {
                // SAFETY: every worker arrived for this epoch; arrive's
                // Release publishes the result writes to wait_all's Acquire.
                let r = results[w as usize].with(|p| unsafe { *p });
                assert_eq!(r, epoch * 10 + w + 1, "epoch {epoch} worker {w}");
            }
        }
        for h in workers {
            h.join().unwrap();
        }
    });
    assert!(report.complete, "exploration must be exhaustive");
}

/// The park hub's sleep/notify handshake: a waiter with zero spin and yield
/// budgets goes straight to the condvar park while the signaller stores the
/// flag and calls [`wake_parked`].  Under the model a condvar wait never
/// times out, so the timed backstop cannot mask a lost wakeup — any
/// interleaving in which the waiter sleeps through the wake is reported as a
/// deadlock.
#[test]
fn park_wait_never_loses_the_wake() {
    let report = model::Builder::new().check(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let waiter = thread::spawn(move || {
            WaitPolicy {
                mode: WaitMode::Park,
                spins_before_yield: 0,
                yields_before_park: 0,
            }
            .wait_until(|| f2.load(Ordering::Acquire));
        });
        flag.store(true, Ordering::Release);
        wake_parked();
        waiter.join().unwrap();
    });
    assert!(report.complete, "exploration must be exhaustive");
}

/// The trace ring at the overwrite boundary: capacity 2, three records, one
/// concurrent reader.  A racing snapshot must stay bounded and decodable
/// (stale is fine, garbage is not); the quiescent snapshot afterwards must
/// report exactly one overwritten event and keep the newest two in order.
#[test]
fn event_ring_overwrite_at_wrap_counts_drops() {
    let report = model::Builder::new().check(|| {
        let ring = Arc::new(EventRing::new(2));
        let r2 = Arc::clone(&ring);
        let reader = thread::spawn(move || {
            let (events, dropped) = r2.snapshot_events();
            assert!(events.len() <= 2, "never more than capacity");
            assert!(dropped <= 1, "cursor bounds the drop count");
            for e in &events {
                assert!(e.a < 3, "decoded events hold written payloads only");
            }
        });
        for i in 0..3u64 {
            ring.record(i, Phase::Probe, EventKind::Instant, i, 0);
        }
        reader.join().unwrap();
        let (events, dropped) = ring.snapshot_events();
        assert_eq!(dropped, 1, "oldest event overwritten at wrap");
        assert_eq!(
            events.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![1, 2],
            "newest two events survive, oldest first"
        );
        assert_eq!(ring.recorded(), 3);
    });
    assert!(report.complete, "exploration must be exhaustive");
}

/// The serve completion hand-off: `complete` publishes the result slot under
/// the lock, then flips the `done` flag (`Release`) and notifies; `wait`
/// spins on the flag and re-locks the slot.  No interleaving may lose the
/// result or the wake.
#[test]
fn serve_completion_handoff_is_clean() {
    let report = model::Builder::new().check(|| {
        let (handle, completer) = completion_pair();
        let waiter = thread::spawn(move || handle.wait());
        completer.complete(7.5);
        assert_eq!(waiter.join().unwrap(), 7.5);
    });
    assert!(report.complete, "exploration must be exhaustive");
}

// ---------------------------------------------------------------------------
// Mutation self-test: prove the checker catches a seeded ordering bug.
// ---------------------------------------------------------------------------

/// A distilled copy of the deque's publication protocol (write the slot cell,
/// publish by storing `bottom`; steal loads `bottom` and reads the cell) with
/// the store's ordering injectable, so the battery can knock the `Release`
/// out and watch the checker object.
struct MiniDeque {
    bottom: AtomicIsize,
    slot: UnsafeCell<u64>,
}

impl MiniDeque {
    fn new() -> Self {
        MiniDeque {
            bottom: AtomicIsize::new(0),
            slot: UnsafeCell::new(0),
        }
    }

    /// Owner push with an injectable publication ordering (`Release` in the
    /// shipped deque; the mutation passes `Relaxed`).
    fn push(&self, value: u64, publish: Ordering) {
        // SAFETY: mirrors the deque's owner-only push; the steal side reads
        // the slot only after observing the bottom bump.
        self.slot.with_mut(|p| unsafe { *p = value });
        self.bottom.store(1, publish);
    }

    /// Thief-side steal: Acquire the cursor, then read the slot it covers.
    fn steal(&self) -> Option<u64> {
        // ordering: mirrors the shipped steal's SeqCst fence between the top
        // and bottom loads; kept so the distilled copy has the same shape.
        fence(Ordering::SeqCst);
        if self.bottom.load(Ordering::Acquire) > 0 {
            // SAFETY: a non-zero bottom means the owner pushed; with a
            // Release push the slot write happens-before this read.
            return Some(self.slot.with(|p| unsafe { *p }));
        }
        None
    }
}

fn mini_deque_round(publish: Ordering) -> Result<model::Report, model::Violation> {
    model::Builder::new().try_check(move || {
        let d = Arc::new(MiniDeque::new());
        let d2 = Arc::clone(&d);
        let thief = thread::spawn(move || d2.steal());
        d.push(41, publish);
        if let Some(v) = thief.join().unwrap() {
            assert_eq!(v, 41);
        }
    })
}

/// Baseline: the shipped ordering is clean across every interleaving.
#[test]
fn mini_deque_release_publication_is_clean() {
    let report = mini_deque_round(Ordering::Release).expect("release publication is race-free");
    assert!(report.complete, "exploration must be exhaustive");
}

/// The seeded mutation: weakening the push's `Release` to `Relaxed` must be
/// reported as a data race, and the reported schedule must replay to the
/// same violation — the checker is demonstrably not blind to the orderings
/// this battery certifies.
#[test]
fn mutation_weakened_release_is_caught_and_replays() {
    let v = mini_deque_round(Ordering::Relaxed).expect_err("checker must catch the mutation");
    assert_eq!(v.kind, model::ViolationKind::DataRace);
    assert!(
        !v.schedule.is_empty(),
        "violation carries a replayable schedule"
    );
    let replayed = model::Builder::new()
        .replay(&v.schedule)
        .try_check(move || {
            // Re-run the mutated program on the pinned schedule.
            let d = Arc::new(MiniDeque::new());
            let d2 = Arc::clone(&d);
            let thief = thread::spawn(move || d2.steal());
            d.push(41, Ordering::Relaxed);
            let _ = thief.join().unwrap();
        })
        .expect_err("pinned schedule reproduces the race");
    assert_eq!(replayed.kind, model::ViolationKind::DataRace);
}
