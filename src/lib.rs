//! # parlo — reproduction of the PPoPP'18 fine-grain parallel loop scheduler
//!
//! This meta-crate re-exports the whole workspace: the fine-grain half-barrier
//! scheduler ([`core`]), the OpenMP-like and Cilk-like baseline runtimes ([`omp`],
//! [`cilk`]), the work-stealing chunk runtime ([`steal`]), the online
//! scheduler-selection runtime ([`adaptive`]), the multi-tenant loop server
//! ([`serve`]), the barrier, affinity and shared-worker
//! substrates ([`barrier`], [`affinity`], [`exec`]), the evaluation workloads
//! ([`workloads`]), the
//! measurement utilities ([`analysis`]) and the many-core cost-model simulator
//! ([`sim`]).
//!
//! See the repository README for the architecture overview, `DESIGN.md` for the system
//! inventory and per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! ```
//! use parlo::prelude::*;
//!
//! let mut pool = FineGrainPool::with_threads(2);
//! let sum = pool.parallel_reduce(0..100, || 0u32, |a, i| a + i as u32, |a, b| a + b);
//! assert_eq!(sum, 4950);
//! ```

#![warn(missing_docs)]

pub use parlo_adaptive as adaptive;
pub use parlo_affinity as affinity;
pub use parlo_analysis as analysis;
pub use parlo_barrier as barrier;
pub use parlo_cilk as cilk;
pub use parlo_core as core;
pub use parlo_exec as exec;
pub use parlo_omp as omp;
pub use parlo_serve as serve;
pub use parlo_sim as sim;
pub use parlo_steal as steal;
pub use parlo_sync as sync;
pub use parlo_trace as trace;
pub use parlo_workloads as workloads;

/// The most commonly used types, re-exported in one place.
pub mod prelude {
    pub use parlo_adaptive::{AdaptivePool, Backend, LoopSite};
    pub use parlo_affinity::{PinPolicy, PlacementConfig, Topology, TopologySource};
    pub use parlo_barrier::{HierarchicalHalfBarrier, HierarchyStats, WaitMode, WaitPolicy};
    pub use parlo_cilk::{CilkFineGrain, CilkPool};
    pub use parlo_core::{
        BarrierKind, Config, FineGrainPool, LoopRuntime, Sequential, StatsRegistry, StatsSource,
        SyncStats,
    };
    pub use parlo_exec::{ExecStats, Executor};
    pub use parlo_omp::{OmpTeam, Schedule, ScheduledTeam};
    pub use parlo_serve::{GangSizing, LoopRequest, ServeConfig, Server};
    pub use parlo_steal::{
        SchedulePerturbation, ScriptedOrder, SeededPerturbation, StealConfig, StealPool, StealSite,
        StealStats,
    };
    pub use parlo_workloads::{all_runtimes, all_runtimes_with_placement};
}
