//! Offline vendored mini-proptest.
//!
//! Provides the subset of the `proptest` API the workspace's property tests use:
//!
//! * [`strategy::Strategy`] — a sampleable source of values, implemented for integer
//!   and float ranges, string patterns (a small regex subset) and
//!   [`collection::vec`];
//! * [`test_runner::ProptestConfig`] / [`test_runner::TestRunner`] — case count and a
//!   deterministic per-test RNG;
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, by design: no shrinking (a failing case reports
//! its inputs and seed instead), and **deterministic seeding by default** — the RNG
//! seed is derived from the test name, so a run is reproducible in automation without
//! extra configuration. Set `PROPTEST_RNG_SEED` to explore a different seed and
//! `PROPTEST_CASES` to override the per-test case count (both read by
//! [`test_runner::TestRunner`]).

pub mod strategy {
    //! Strategies: sampleable sources of test inputs.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;
        /// Samples one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// String patterns act as strategies generating matching strings (regex subset:
    /// literals, `[...]` classes with ranges, and `{m}`/`{m,n}`/`?`/`*`/`+`
    /// quantifiers).
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut StdRng) -> String {
            sample_pattern(self, rng)
        }
    }

    /// One element of a parsed pattern: a set of candidate chars plus a repetition
    /// range.
    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let set: Vec<char> = match c {
                '[' => {
                    let mut set = Vec::new();
                    let mut prev: Option<char> = None;
                    while let Some(&c2) = chars.peek() {
                        chars.next();
                        if c2 == ']' {
                            break;
                        }
                        if c2 == '-' {
                            if let (Some(lo), Some(&hi)) = (prev, chars.peek()) {
                                if hi != ']' {
                                    chars.next();
                                    for ch in (lo as u32 + 1)..=(hi as u32) {
                                        if let Some(ch) = char::from_u32(ch) {
                                            set.push(ch);
                                        }
                                    }
                                    prev = None;
                                    continue;
                                }
                            }
                            set.push('-');
                            prev = Some('-');
                        } else {
                            set.push(c2);
                            prev = Some(c2);
                        }
                    }
                    set
                }
                '\\' => vec![chars.next().unwrap_or('\\')],
                c => vec![c],
            };
            // Optional quantifier.
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c2 in chars.by_ref() {
                        if c2 == '}' {
                            break;
                        }
                        spec.push(c2);
                    }
                    let parts: Vec<&str> = spec.splitn(2, ',').collect();
                    let lo: usize = parts[0].trim().parse().unwrap_or(0);
                    let hi: usize = parts
                        .get(1)
                        .map(|s| s.trim().parse().unwrap_or(lo))
                        .unwrap_or(lo);
                    (lo, hi.max(lo))
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
        }
        atoms
    }

    fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(pattern) {
            if atom.chars.is_empty() {
                continue;
            }
            let reps = rng.gen_range(atom.min..=atom.max);
            for _ in 0..reps {
                out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A strategy producing `Vec`s of values from an element strategy, with a length
    /// drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy generating vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case-count configuration and the deterministic per-test runner.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives one property: holds the RNG and the effective case count.
    pub struct TestRunner {
        rng: StdRng,
        cases: u32,
        seed: u64,
    }

    impl TestRunner {
        /// Creates a runner for the named test. The seed comes from
        /// `PROPTEST_RNG_SEED` if set, otherwise deterministically from the test
        /// name; `PROPTEST_CASES` overrides the configured case count.
        pub fn new(config: ProptestConfig, test_name: &str) -> Self {
            let seed = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|s| s.trim().parse::<u64>().ok())
                .unwrap_or_else(|| fnv1a(test_name.as_bytes()));
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.trim().parse::<u32>().ok())
                .unwrap_or(config.cases);
            TestRunner {
                rng: StdRng::seed_from_u64(seed),
                cases,
                seed,
            }
        }

        /// The number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The seed this runner started from (for failure reports).
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// The runner's RNG, shared by all strategies of the property.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Module-style access to strategy constructors (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property; reports the failing inputs via the harness.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` becomes a
/// `#[test]` that samples its arguments `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal item muncher behind [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($config, stringify!($name));
            for case in 0..runner.cases() {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), runner.rng());
                )+
                let case_desc = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || $body,
                ));
                if let Err(cause) = outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (seed {}):\n  {}",
                        case + 1,
                        runner.cases(),
                        stringify!($name),
                        runner.seed(),
                        case_desc
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}
