//! Offline vendored subset of `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free API surface
//! (`lock()` returns the guard directly, `into_inner()` returns the value).
//! Fairness and micro-contention behaviour of the real crate are not reproduced;
//! the workspace only uses the mutex on cold paths (retiring reducer views).

use std::fmt;
use std::sync::MutexGuard;

/// A mutual-exclusion primitive (poison-free facade over `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std`, a panic while holding the lock does not poison it for later
    /// callers (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}
