//! Offline vendored subset of the `crossbeam` crate.
//!
//! The container this reproduction builds in has no network access, so the workspace
//! vendors the handful of external APIs the sources use. This crate provides only
//! [`utils::CachePadded`], the cache-line-aligned wrapper the barrier and deque
//! implementations use to prevent false sharing.

/// Utilities for concurrent programming (subset: `CachePadded`).
pub mod utils {
    use core::fmt;
    use core::ops::{Deref, DerefMut};

    /// Pads and aligns a value to the length of a cache line.
    ///
    /// On x86-64 the adjacent-line prefetcher pulls pairs of 64-byte lines, so 128-byte
    /// alignment is used there (matching upstream crossbeam); other common
    /// architectures use 64 bytes.
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    #[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), repr(align(128)))]
    #[cfg_attr(
        not(any(target_arch = "x86_64", target_arch = "aarch64")),
        repr(align(64))
    )]
    pub struct CachePadded<T> {
        value: T,
    }

    unsafe impl<T: Send> Send for CachePadded<T> {}
    unsafe impl<T: Sync> Sync for CachePadded<T> {}

    impl<T> CachePadded<T> {
        /// Pads and aligns a value to the length of a cache line.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Returns the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("CachePadded")
                .field("value", &self.value)
                .finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(t: T) -> Self {
            CachePadded::new(t)
        }
    }
}
