//! Offline vendored subset of the `libc` crate.
//!
//! Provides only the Linux scheduling-affinity surface `parlo-affinity` uses:
//! [`cpu_set_t`], [`CPU_SET`], [`sched_setaffinity`], [`sched_getcpu`] and
//! [`__errno_location`]. The declarations mirror glibc's ABI on Linux.

#![allow(non_camel_case_types)]
#![cfg(target_os = "linux")]

/// C `int`.
pub type c_int = i32;
/// C `unsigned long`.
pub type c_ulong = u64;
/// POSIX `pid_t`.
pub type pid_t = i32;
/// POSIX `size_t`.
pub type size_t = usize;

const CPU_SETSIZE: usize = 1024;
const ULONG_BITS: usize = 8 * core::mem::size_of::<c_ulong>();

/// A CPU affinity bitmask holding `CPU_SETSIZE` (1024) CPUs, as defined by glibc.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [c_ulong; CPU_SETSIZE / ULONG_BITS],
}

/// Adds `cpu` to the set (the `CPU_SET` macro from `<sched.h>`).
#[allow(non_snake_case)]
pub fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE {
        set.bits[cpu / ULONG_BITS] |= 1 << (cpu % ULONG_BITS);
    }
}

/// Returns whether `cpu` is in the set (the `CPU_ISSET` macro from `<sched.h>`).
#[allow(non_snake_case)]
pub fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE && set.bits[cpu / ULONG_BITS] & (1 << (cpu % ULONG_BITS)) != 0
}

extern "C" {
    /// `sched_setaffinity(2)`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
    /// `sched_getaffinity(2)`.
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *mut cpu_set_t) -> c_int;
    /// `sched_getcpu(3)`.
    pub fn sched_getcpu() -> c_int;
    /// glibc's thread-local `errno` location.
    pub fn __errno_location() -> *mut c_int;
}
