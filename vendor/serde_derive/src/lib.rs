//! Offline vendored `#[derive(Serialize, Deserialize)]` for the mini-serde value
//! model.
//!
//! Written against the bare `proc_macro` API (no `syn`/`quote` available offline).
//! Supports exactly the shapes this workspace derives:
//!
//! * structs with named fields — serialized as a JSON object keyed by field name;
//! * enums whose variants are all units — serialized as the variant-name string.
//!
//! Generic parameters and other shapes are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    /// Struct name + named field identifiers.
    Struct(String, Vec<String>),
    /// Enum name + unit variant identifiers.
    Enum(String, Vec<String>),
}

/// Derives `serde::Serialize` via the mini-serde `Value` model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Ok(Item::Struct(name, fields)) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Ok(Item::Enum(name, variants)) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(String::from(\"{v}\")),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
        Err(msg) => format!("compile_error!(\"derive(Serialize): {msg}\");"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Derives `serde::Deserialize` via the mini-serde `Value` model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Ok(Item::Struct(name, fields)) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(m, \"{f}\")\
                             .ok_or_else(|| ::serde::Error::custom(\"missing field `{f}`\"))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let m = v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Ok(Item::Enum(name, variants)) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let s = v.as_str().ok_or_else(|| ::serde::Error::custom(\"expected string for {name}\"))?;\n\
                         match s {{ {arms} _ => Err(::serde::Error::custom(\"unknown {name} variant\")) }}\n\
                     }}\n\
                 }}"
            )
        }
        Err(msg) => format!("compile_error!(\"derive(Deserialize): {msg}\");"),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

/// Parses `struct Name { fields }` / `enum Name { UnitVariants }` out of the item
/// token stream, skipping attributes and visibility.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            Some(TokenTree::Ident(i)) => {
                let s = i.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                return Err(format!("unexpected token `{s}` before struct/enum"));
            }
            Some(t) => return Err(format!("unexpected token `{t}`")),
            None => return Err("ran out of tokens before struct/enum".into()),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "generic type `{name}` is not supported by the vendored derive"
            ));
        }
        other => {
            return Err(format!(
                "expected braced body for `{name}`, found {other:?}"
            ))
        }
    };
    if kind == "struct" {
        parse_named_fields(body).map(|fields| Item::Struct(name, fields))
    } else {
        parse_unit_variants(body).map(|variants| Item::Enum(name, variants))
    }
}

/// Collects the field names of a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility on the field.
        let field = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(i)) => break i.to_string(),
                Some(t) => return Err(format!("unexpected token `{t}` in struct body")),
                None => return Ok(fields),
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => {
                return Err(format!(
                    "expected `:` after field `{field}` (tuple structs unsupported)"
                ))
            }
        }
        fields.push(field);
        // Skip the type up to the next top-level comma, tracking angle-bracket depth
        // so commas inside `Vec<Vec<T>>`-style generics do not split the field.
        let mut angle = 0i32;
        for t in tokens.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
}

/// Collects the variant names of an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        let variant = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(i)) => break i.to_string(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                Some(t) => return Err(format!("unexpected token `{t}` in enum body")),
                None => return Ok(variants),
            }
        };
        match tokens.peek() {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "non-unit variant `{variant}` is not supported by the vendored derive"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "discriminant on variant `{variant}` is not supported"
                ));
            }
            _ => {}
        }
        variants.push(variant);
    }
}
