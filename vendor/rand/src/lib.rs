//! Offline vendored subset of the `rand` crate.
//!
//! The workloads only need seeded, reproducible pseudo-random generation:
//! `StdRng::seed_from_u64`, `Rng::gen` and `Rng::gen_range` over integer and float
//! ranges. The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for test-data generation, deliberately not cryptographic.

use core::ops::{Range, RangeInclusive};

/// A random number generator: the minimal core interface.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing generation methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard (uniform) distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` half-open or `a..=b` inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns a uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A generator that can be instantiated from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable with a standard uniform distribution (full value range for
/// integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be sampled from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 per draw.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as $wide).wrapping_sub(start as $wide) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((start as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * <$t as Standard>::sample(rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (end - start) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1000i64..1000);
            assert!((-1000..1000).contains(&v));
            let f = rng.gen_range(-0.15f64..0.15);
            assert!((-0.15..0.15).contains(&f));
            let g = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&g));
        }
    }
}
