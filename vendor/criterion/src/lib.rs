//! Offline vendored mini-criterion.
//!
//! Implements the subset of the `criterion` API the `parlo-bench` benches use:
//! [`Criterion::benchmark_group`], group configuration
//! ([`BenchmarkGroup::sample_size`], [`BenchmarkGroup::warm_up_time`],
//! [`BenchmarkGroup::measurement_time`]), [`BenchmarkGroup::bench_function`] with a
//! [`Bencher`] whose `iter` closure is timed, plus [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — warm up for the configured duration, then run
//! timed batches until the measurement window closes, and report the mean, min and max
//! time per iteration. There is no statistical analysis, HTML report or comparison
//! with saved baselines; benches exist here to exercise the hot paths and print
//! indicative numbers, and `cargo bench` stays dependency-free and offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench ... -- --quick` (or CRITERION_QUICK=1) caps every benchmark's
        // warm-up/measurement windows so CI can smoke-run benches in milliseconds.
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion {
            default_sample_size: 10,
            default_warm_up: Duration::from_millis(150),
            default_measurement: Duration::from_millis(400),
            quick,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        let sample_size = self.default_sample_size;
        let warm_up = self.default_warm_up;
        let measurement = self.default_measurement;
        let quick = self.quick;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
            warm_up,
            measurement,
            quick,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (sample_size, warm_up, measurement) = clamp_quick(
            self.quick,
            self.default_sample_size,
            self.default_warm_up,
            self.default_measurement,
        );
        run_bench(name, sample_size, warm_up, measurement, f);
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    quick: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the length of the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (sample_size, warm_up, measurement) =
            clamp_quick(self.quick, self.sample_size, self.warm_up, self.measurement);
        run_bench(name, sample_size, warm_up, measurement, f);
        self
    }

    /// Ends the group (prints nothing extra; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) method times the body.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Times repeated executions of `body` and records per-iteration samples.
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        // Warm-up: run the body (and learn roughly how long one call takes).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(body());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Choose a batch size so each sample takes ~ measurement/sample_size.
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Caps sampling parameters in quick mode (group overrides included): benches then
/// finish in a few milliseconds each while still exercising the measured path.
fn clamp_quick(
    quick: bool,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
) -> (usize, Duration, Duration) {
    if quick {
        (
            sample_size.min(3),
            warm_up.min(Duration::from_millis(20)),
            measurement.min(Duration::from_millis(60)),
        )
    } else {
        (sample_size, warm_up, measurement)
    }
}

fn run_bench(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        warm_up,
        measurement,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{name:<44} mean {:>12} min {:>12} max {:>12} ({} samples)",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        b.samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles benchmark functions into one group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; the mini-harness ignores them.
            $( $group(); )+
        }
    };
}
