//! Offline vendored mini-criterion.
//!
//! Implements the subset of the `criterion` API the `parlo-bench` benches use:
//! [`Criterion::benchmark_group`], group configuration
//! ([`BenchmarkGroup::sample_size`], [`BenchmarkGroup::warm_up_time`],
//! [`BenchmarkGroup::measurement_time`]), [`BenchmarkGroup::bench_function`] with a
//! [`Bencher`] whose `iter` closure is timed, plus [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — warm up for the configured duration, then run
//! timed batches until the measurement window closes, and report the mean, min and max
//! time per iteration. There is no statistical analysis, HTML report or comparison
//! with saved baselines; benches exist here to exercise the hot paths and print
//! indicative numbers, and `cargo bench` stays dependency-free and offline.
//!
//! One machine-readable hook exists for CI: when the `CRITERION_JSON` environment
//! variable names a file, every completed benchmark's **median** per-iteration time
//! (plus its **median absolute deviation**, the robust dispersion estimate
//! `perfgate --measured` builds its noise thresholds from) is collected and written
//! there as JSON when the `criterion_main!`-generated `main` returns (`--quick` runs
//! included), so perf gates can consume bench output without scraping the
//! human-readable lines.  The report also records a **host fingerprint** (cpu count
//! and `PARLO_THREADS`), which the measured gate uses to refuse comparing numbers
//! taken on differently shaped machines.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Completed benchmark results collected for the `CRITERION_JSON` report.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// One benchmark's collected result.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// `group/name` for grouped benchmarks, bare `name` otherwise.
    pub name: String,
    /// Median per-iteration time over the collected samples, in seconds.
    pub median_s: f64,
    /// Median absolute deviation of the samples around their median, in seconds.
    pub mad_s: f64,
    /// Number of samples the median was taken over.
    pub samples: usize,
}

/// Median of a sample set (mean of the two middle elements for even counts).
fn median(samples: &[f64]) -> f64 {
    debug_assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median absolute deviation of a sample set around its median (raw, unscaled).
fn mad(samples: &[f64]) -> f64 {
    debug_assert!(!samples.is_empty());
    let m = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|s| (s - m).abs()).collect();
    median(&deviations)
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes results as
/// `{"host":{"cpus":...,"parlo_threads":...},"benches":[{"name":...,"median_s":...,"mad_s":...,"samples":...}]}`.
fn results_to_json(results: &[BenchResult]) -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let parlo_threads: usize = std::env::var("PARLO_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"{}\",\"median_s\":{:e},\"mad_s\":{:e},\"samples\":{}}}",
                escape_json(&r.name),
                r.median_s,
                r.mad_s,
                r.samples
            )
        })
        .collect();
    format!(
        "{{\"host\":{{\"cpus\":{cpus},\"parlo_threads\":{parlo_threads}}},\"benches\":[{}]}}\n",
        rows.join(",")
    )
}

/// Writes the collected results of this process to `path` as JSON.
pub fn write_results_to(path: &str) -> std::io::Result<()> {
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    std::fs::write(path, results_to_json(&results))
}

/// Called by the `criterion_main!`-generated `main` after all groups have run: writes
/// the per-bench medians to the file named by `CRITERION_JSON`, if set.
#[doc(hidden)]
pub fn flush_json_results() {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Err(e) = write_results_to(&path) {
            eprintln!("criterion: failed to write CRITERION_JSON={path}: {e}");
        } else {
            println!("criterion: wrote per-bench medians to {path}");
        }
    }
}

/// The benchmark driver handed to every `criterion_group!` function.
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench ... -- --quick` (or CRITERION_QUICK=1) caps every benchmark's
        // warm-up/measurement windows so CI can smoke-run benches in milliseconds.
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion {
            default_sample_size: 10,
            default_warm_up: Duration::from_millis(150),
            default_measurement: Duration::from_millis(400),
            quick,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        let sample_size = self.default_sample_size;
        let warm_up = self.default_warm_up;
        let measurement = self.default_measurement;
        let quick = self.quick;
        let name = name.to_string();
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            warm_up,
            measurement,
            quick,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (sample_size, warm_up, measurement) = clamp_quick(
            self.quick,
            self.default_sample_size,
            self.default_warm_up,
            self.default_measurement,
        );
        run_bench(name, name, sample_size, warm_up, measurement, f);
        self
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    quick: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long each benchmark warms up before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the length of the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (sample_size, warm_up, measurement) =
            clamp_quick(self.quick, self.sample_size, self.warm_up, self.measurement);
        let record = format!("{}/{name}", self.name);
        run_bench(name, &record, sample_size, warm_up, measurement, f);
        self
    }

    /// Ends the group (prints nothing extra; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) method times the body.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    /// Times repeated executions of `body` and records per-iteration samples.
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        // Warm-up: run the body (and learn roughly how long one call takes).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(body());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Choose a batch size so each sample takes ~ measurement/sample_size.
        let per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// Caps sampling parameters in quick mode (group overrides included): benches then
/// finish in a few milliseconds each while still exercising the measured path.
fn clamp_quick(
    quick: bool,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
) -> (usize, Duration, Duration) {
    if quick {
        (
            sample_size.min(3),
            warm_up.min(Duration::from_millis(20)),
            measurement.min(Duration::from_millis(60)),
        )
    } else {
        (sample_size, warm_up, measurement)
    }
}

fn run_bench(
    name: &str,
    record_name: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        warm_up,
        measurement,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{name:<44} mean {:>12} min {:>12} max {:>12} ({} samples)",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        b.samples.len()
    );
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(BenchResult {
            name: record_name.to_string(),
            median_s: median(&b.samples),
            mad_s: mad(&b.samples),
            samples: b.samples.len(),
        });
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Bundles benchmark functions into one group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring criterion's macro.  After
/// all groups complete, the per-bench medians are written to the file named by the
/// `CRITERION_JSON` environment variable (if set).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; the mini-harness ignores them.
            $( $group(); )+
            $crate::flush_json_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_sample_counts() {
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn mad_measures_dispersion_around_the_median() {
        assert_eq!(mad(&[5.0]), 0.0);
        assert_eq!(mad(&[2.0, 2.0, 2.0]), 0.0);
        // median = 3, |deviations| = [2, 1, 0, 1, 2], median of those = 1.
        assert_eq!(mad(&[1.0, 2.0, 3.0, 4.0, 5.0]), 1.0);
    }

    #[test]
    fn json_output_is_well_formed_and_escaped() {
        let results = vec![
            BenchResult {
                name: "group/bench \"a\"".into(),
                median_s: 1.5e-6,
                mad_s: 2.0e-8,
                samples: 3,
            },
            BenchResult {
                name: "plain".into(),
                median_s: 2.0e-3,
                mad_s: 0.0,
                samples: 10,
            },
        ];
        let json = results_to_json(&results);
        assert!(json.starts_with("{\"host\":{\"cpus\":"));
        assert!(json.contains("\"parlo_threads\":"));
        assert!(json.contains("\"benches\":["));
        assert!(json.contains("\\\"a\\\""));
        assert!(json.contains("\"samples\":10"));
        assert!(json.contains("\"mad_s\":2e-8") || json.contains("\"mad_s\":2e-08"));
        assert!(json.contains("1.5e-6") || json.contains("1.5e-06"));
        // Balanced braces/brackets (a cheap well-formedness check without a parser).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn run_bench_records_a_result_and_write_results_roundtrips() {
        let before = RESULTS.lock().unwrap().len();
        run_bench(
            "smoke",
            "test-group/smoke",
            3,
            Duration::from_millis(1),
            Duration::from_millis(5),
            |b| b.iter(|| black_box(1 + 1)),
        );
        let results = RESULTS.lock().unwrap();
        assert!(results.len() > before);
        let rec = results.last().unwrap();
        assert_eq!(rec.name, "test-group/smoke");
        assert!(rec.median_s > 0.0);
        assert!(rec.samples >= 1);
        drop(results);

        let path = std::env::temp_dir().join(format!("criterion_json_{}.json", std::process::id()));
        write_results_to(path.to_str().unwrap()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("test-group/smoke"));
        std::fs::remove_file(&path).ok();
    }
}
