//! Offline vendored mini-serde.
//!
//! The container has no network access, so the workspace vendors a small
//! self-contained replacement for the `serde` + `serde_json` pair. Instead of
//! serde's visitor architecture, this version routes everything through one
//! JSON-shaped [`Value`] tree:
//!
//! * [`Serialize`] — convert `&self` into a [`Value`];
//! * [`Deserialize`] — reconstruct `Self` from a [`Value`];
//! * `#[derive(Serialize, Deserialize)]` — implemented by the vendored
//!   `serde_derive` proc-macro for named-field structs and unit-variant enums
//!   (the only shapes this workspace derives).
//!
//! The `serde_json` vendored crate renders/parses [`Value`] as JSON text.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped dynamic value: the interchange format between `Serialize`,
/// `Deserialize` and the `serde_json` text layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as an ordered list of key/value pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up `key` in a map's entry list (helper used by derived code).
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the dynamic value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the dynamic value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- identity impls (Value is its own wire format) ----

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- primitive impls ----

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    _ => return Err(Error::custom("expected unsigned integer")),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n).map_err(|_| Error::custom("integer out of range"))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    _ => return Err(Error::custom("expected integer")),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}
