//! Offline vendored mini `serde_json`: JSON text rendering and parsing for the
//! mini-serde [`Value`] model.
//!
//! Floats are rendered with Rust's shortest round-trip formatting (`{:?}`), so
//! `to_string` → `from_str` round-trips every finite `f64` bit-exactly.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            // `{:?}` is the shortest representation that round-trips the f64.
            let s = format!("{f:?}");
            out.push_str(&s);
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::custom(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom("invalid integer"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::custom("invalid integer"))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip_floats_and_strings() {
        let v = vec![1.5f64, -0.001, 12345.6789, 3e-9];
        let s = super::to_string(&v).unwrap();
        let back: Vec<f64> = super::from_str(&s).unwrap();
        assert_eq!(v, back);

        let s2 = super::to_string("a \"quoted\"\nline").unwrap();
        let back2: String = super::from_str(&s2).unwrap();
        assert_eq!(back2, "a \"quoted\"\nline");
    }
}
